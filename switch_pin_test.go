package repro

// Diff-pin for the planner refactor: a verbatim copy of the algorithm
// switch and auto-resolution heuristic that used to live in tsa.go, run
// side by side with the registry dispatch that replaced them. Every
// (Algorithm, Scheme) pair must select the same kernel and produce a
// byte-identical alignment; every auto scenario must resolve to the same
// algorithm the old heuristic chose. Delete this file only together with
// a deliberate change to selection semantics.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/msa"
	"repro/internal/plan"
)

// legacyResolveAlgorithm is the pre-planner auto heuristic — updated
// deliberately for two selection-semantics changes the planner made since:
// linear-gap primaries are the lane-packed kernels, and the lattice
// estimate halves when the scheme's score bound admits 16-bit cells.
func legacyResolveAlgorithm(tr Triple, sch *Scheme, opt Options, parallel bool) Algorithm {
	if opt.Algorithm != AlgorithmAuto {
		return opt.Algorithm
	}
	maxB := opt.MaxBytes
	if maxB <= 0 {
		maxB = core.DefaultMaxBytes
	}
	lattice := core.FullMatrixBytes(tr)
	if !sch.Affine() && core.Int16Safe(tr, sch) {
		lattice /= 2
	}
	switch {
	case sch.Affine() && 7*core.FullMatrixBytes(tr) <= maxB:
		if parallel {
			return AlgorithmAffineParallel
		}
		return AlgorithmAffine
	case sch.Affine():
		return AlgorithmAffineLinear
	case lattice <= maxB:
		if parallel {
			return AlgorithmParallelPacked
		}
		return AlgorithmFullPacked
	default:
		if parallel {
			return AlgorithmParallelLinear
		}
		return AlgorithmLinear
	}
}

// legacyRunAlgorithm is the pre-planner dispatch switch, verbatim.
func legacyRunAlgorithm(ctx context.Context, algo Algorithm, tr Triple, sch *Scheme, copt core.Options) (aln *Alignment, prune *PruneStats, err error) {
	switch algo {
	case AlgorithmFull:
		aln, err = core.AlignFull(ctx, tr, sch, copt)
	case AlgorithmFullPacked:
		aln, err = core.AlignFullPacked(ctx, tr, sch, copt)
	case AlgorithmParallel:
		aln, err = core.AlignParallel(ctx, tr, sch, copt)
	case AlgorithmParallelPacked:
		aln, err = core.AlignParallelPacked(ctx, tr, sch, copt)
	case AlgorithmLinear:
		aln, err = core.AlignLinear(ctx, tr, sch, copt)
	case AlgorithmParallelLinear:
		aln, err = core.AlignParallelLinear(ctx, tr, sch, copt)
	case AlgorithmDiagonal:
		aln, err = core.AlignDiagonal(ctx, tr, sch, copt)
	case AlgorithmAffine:
		aln, err = core.AlignAffine(ctx, tr, sch, copt)
	case AlgorithmAffineLinear:
		aln, err = core.AlignAffineLinear(ctx, tr, sch, copt)
	case AlgorithmAffineParallel:
		aln, err = core.AlignAffineParallel(ctx, tr, sch, copt)
	case AlgorithmPruned, AlgorithmPrunedParallel, AlgorithmBounded, AlgorithmAStar:
		var bound *Alignment
		bound, err = msa.CenterStarRefined(tr, sch)
		if err != nil {
			break
		}
		var st core.PruneStats
		switch algo {
		case AlgorithmPruned:
			aln, st, err = core.AlignPruned(ctx, tr, sch, copt, bound.Score)
		case AlgorithmPrunedParallel:
			aln, st, err = core.AlignPrunedParallel(ctx, tr, sch, copt, bound.Score)
		case AlgorithmBounded:
			aln, st, err = core.AlignBounded(ctx, tr, sch, copt, bound.Score)
		case AlgorithmAStar:
			aln, st, err = core.AlignAStar(ctx, tr, sch, copt, bound.Score)
		}
		if err == nil {
			prune = &st
		}
	case AlgorithmCenterStar:
		aln, err = msa.CenterStar(tr, sch)
	case AlgorithmCenterStarRefined:
		aln, err = msa.CenterStarRefined(tr, sch)
	case AlgorithmProgressive:
		aln, err = msa.Progressive(tr, sch)
	default:
		return nil, nil, fmt.Errorf("repro: unknown algorithm %q", algo)
	}
	return aln, prune, err
}

// pinTriples are the workloads the pin runs over: a DNA triple under the
// linear default and an affine override, and a protein triple under
// BLOSUM62 (affine).
func pinTriples(t *testing.T) []struct {
	name string
	tr   Triple
	sch  *Scheme
} {
	t.Helper()
	g := NewGenerator(DNA, 41)
	dna := g.RelatedTriple(14, MutationModel{SubstitutionRate: 0.2, InsertionRate: 0.05, DeletionRate: 0.05})
	dnaSch, err := DefaultScheme(DNA)
	if err != nil {
		t.Fatal(err)
	}
	dnaAff, err := dnaSch.WithGaps(-4, -1)
	if err != nil {
		t.Fatal(err)
	}
	gp := NewGenerator(Protein, 43)
	prot := gp.RelatedTriple(12, MutationModel{SubstitutionRate: 0.2, InsertionRate: 0.05, DeletionRate: 0.05})
	b62, ok := SchemeByName("blosum62")
	if !ok {
		t.Fatal("blosum62 scheme missing")
	}
	return []struct {
		name string
		tr   Triple
		sch  *Scheme
	}{
		{"dna-linear", dna, dnaSch},
		{"dna-affine", dna, dnaAff},
		{"protein-blosum62", prot, b62},
	}
}

// TestRegistryDispatchMatchesLegacySwitch runs every explicit algorithm
// under every pinned scheme through both the legacy switch and the
// planner-backed Align, asserting identical selection and byte-identical
// alignments.
func TestRegistryDispatchMatchesLegacySwitch(t *testing.T) {
	ctx := context.Background()
	for _, w := range pinTriples(t) {
		for _, algo := range Algorithms() {
			name := w.name + "/" + string(algo)
			opt := Options{Algorithm: algo, Scheme: w.sch}
			wantAln, wantPrune, wantErr := legacyRunAlgorithm(ctx, algo, w.tr, w.sch, core.Options{})
			res, err := Align(w.tr, opt)
			if (err != nil) != (wantErr != nil) {
				t.Fatalf("%s: err = %v, legacy err = %v", name, err, wantErr)
			}
			if err != nil {
				continue
			}
			if res.Algorithm != algo {
				t.Errorf("%s: ran %s, want the requested algorithm", name, res.Algorithm)
			}
			if res.Score != wantAln.Score {
				t.Errorf("%s: score %d, legacy %d", name, res.Score, wantAln.Score)
			}
			ra, rb, rc := res.Rows()
			la, lb, lc := wantAln.Rows()
			if ra != la || rb != lb || rc != lc {
				t.Errorf("%s: rows diverge from the legacy switch", name)
			}
			if (res.Prune != nil) != (wantPrune != nil) {
				t.Errorf("%s: prune stats presence diverges", name)
			} else if res.Prune != nil && *res.Prune != *wantPrune {
				t.Errorf("%s: prune stats %+v, legacy %+v", name, *res.Prune, *wantPrune)
			}
			if res.Plan == nil || res.Plan.Algorithm != string(algo) {
				t.Errorf("%s: Result.Plan missing or wrong: %+v", name, res.Plan)
			}
		}
	}
}

// TestPlannerAutoMatchesLegacyResolve pins automatic resolution — both
// parallel (the Align path) and sequential (the wide-batch path) — to the
// legacy heuristic across memory-cap scenarios.
func TestPlannerAutoMatchesLegacyResolve(t *testing.T) {
	g := NewGenerator(DNA, 47)
	big := g.RelatedTriple(96, MutationModel{SubstitutionRate: 0.2})
	small := g.RelatedTriple(12, MutationModel{SubstitutionRate: 0.2})
	dnaSch, err := DefaultScheme(DNA)
	if err != nil {
		t.Fatal(err)
	}
	aff, err := dnaSch.WithGaps(-4, -1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		tr   Triple
		sch  *Scheme
		opt  Options
	}{
		{"small-linear", small, dnaSch, Options{}},
		{"small-affine", small, aff, Options{Scheme: aff}},
		{"big-capped", big, dnaSch, Options{MaxBytes: 1 << 20}},
		{"big-affine-capped", big, aff, Options{Scheme: aff, MaxBytes: 4 << 20}},
	}
	for _, tc := range cases {
		for _, parallel := range []bool{true, false} {
			want := legacyResolveAlgorithm(tc.tr, tc.sch, tc.opt, parallel)
			pl, _, err := plan.Resolve(planRequest(tc.tr, tc.sch, tc.opt, parallel))
			if err != nil {
				t.Fatalf("%s/parallel=%v: %v", tc.name, parallel, err)
			}
			if pl.Algorithm != string(want) {
				t.Errorf("%s/parallel=%v: planned %s, legacy resolved %s", tc.name, parallel, pl.Algorithm, want)
			}
		}
	}
}

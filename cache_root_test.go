package repro

// Integration tests for the serving-cache support surface in the root
// package: AlignSeeded (the near-duplicate patch-up primitive) must be
// bit-identical to a full alignment whenever its seed is a valid lower
// bound and fail detectably otherwise, and Options.Sketch must let a
// caller hand the planner's identity probe a pre-built k-mer sketch.

import (
	"context"
	"testing"

	"repro/internal/seq"
)

// TestAlignSeededBitIdenticalToFull seeds the bounded kernel with bounds of
// varying tightness — including the exact optimum — and requires the exact
// score and rows every time.
func TestAlignSeededBitIdenticalToFull(t *testing.T) {
	g := NewGenerator(DNA, 41)
	tr := g.RelatedTriple(96, MutationModel{SubstitutionRate: 0.08, InsertionRate: 0.02})
	control, err := Align(tr, Options{Algorithm: AlgorithmFull})
	if err != nil {
		t.Fatal(err)
	}
	ca, cb, cc := control.Rows()
	for _, slack := range []int32{0, 5, 200, 100000} {
		res, err := AlignSeeded(context.Background(), tr, Options{}, control.Score-slack)
		if err != nil {
			t.Fatalf("slack %d: %v", slack, err)
		}
		if res.Score != control.Score {
			t.Fatalf("slack %d: score %d, want %d", slack, res.Score, control.Score)
		}
		ra, rb, rc := res.Rows()
		if ra != ca || rb != cb || rc != cc {
			t.Fatalf("slack %d: rows differ from the full kernel", slack)
		}
		if res.Algorithm != AlgorithmBounded {
			t.Fatalf("slack %d: algorithm %q, want bounded", slack, res.Algorithm)
		}
		if res.Plan == nil || res.Prune == nil {
			t.Fatalf("slack %d: missing plan/prune metadata", slack)
		}
	}
}

// TestAlignSeededTooHighSeedFails: a seed above the optimum excludes the
// optimal path from the admissible band; AlignSeeded must report that
// instead of returning a suboptimal alignment — the fall-through contract
// the near-duplicate patch-up's exactness rests on.
func TestAlignSeededTooHighSeedFails(t *testing.T) {
	g := NewGenerator(DNA, 43)
	tr := g.RelatedTriple(64, MutationModel{SubstitutionRate: 0.1})
	control, err := Align(tr, Options{Algorithm: AlgorithmFull})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AlignSeeded(context.Background(), tr, Options{}, control.Score+50); err == nil {
		t.Fatal("seed above the optimum must fail, not return a result")
	}
}

// TestAlignSeededRejectsAffine: the bounded kernels are linear-gap; an
// affine scheme must be refused up front.
func TestAlignSeededRejectsAffine(t *testing.T) {
	sch, err := DefaultScheme(DNA)
	if err != nil {
		t.Fatal(err)
	}
	affine, err := sch.WithGaps(-4, -1)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(DNA, 47)
	tr := g.RelatedTriple(32, MutationModel{SubstitutionRate: 0.1})
	if _, err := AlignSeeded(context.Background(), tr, Options{Scheme: affine}, 0); err == nil {
		t.Fatal("affine scheme accepted by the linear-gap bounded kernel")
	}
}

// TestAlignSeededHonorsContext: an already-cancelled context fails fast.
func TestAlignSeededHonorsContext(t *testing.T) {
	g := NewGenerator(DNA, 53)
	tr := g.RelatedTriple(32, MutationModel{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AlignSeeded(ctx, tr, Options{}, -1000); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

// TestOptionsSketchReusedByProbe: handing the planner a pre-built sketch
// must not change what it plans — and a sketch of the wrong k must be
// ignored rather than honored or crashed on. (The sharing itself is the
// point: the serving layer sketches once for its near-duplicate prescreen
// and the planner probe rides the same profiles.)
func TestOptionsSketchReusedByProbe(t *testing.T) {
	g := NewGenerator(DNA, 59)
	tr := g.RelatedTriple(180, MutationModel{SubstitutionRate: 0.04})

	bare, err := PlanAlign(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	withSketch, err := PlanAlign(tr, Options{Sketch: SketchTriple(tr)})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Algorithm != withSketch.Algorithm || bare.EstCells != withSketch.EstCells {
		t.Fatalf("pre-built sketch changed the plan: %+v vs %+v", bare, withSketch)
	}

	badSketch, err := PlanAlign(tr, Options{Sketch: seq.SketchTriple(tr, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Algorithm != badSketch.Algorithm || bare.EstCells != badSketch.EstCells {
		t.Fatalf("wrong-k sketch changed the plan: %+v vs %+v", bare, badSketch)
	}
}

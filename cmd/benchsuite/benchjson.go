package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/msa"
	"repro/internal/pairwise"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/wavefront"
)

// Machine-readable kernel metrics: BENCH_<rev>.json is the perf-regression
// baseline the CI bench-smoke job archives. Each entry reports the cell
// rate, per-operation allocation profile, and predicted peak lattice bytes
// of one alignment kernel on a fixed seeded workload, so two revisions can
// be diffed without re-parsing text tables.

// kernelMetric is one kernel's measurement. The scheduler fields are only
// populated for kernels that go through the wavefront block scheduler:
// Steals/Keeps are per-operation work-stealing counts and TileDims the
// adaptive tile shape the kernel resolved for its lattice.
type kernelMetric struct {
	Kernel           string  `json:"kernel"`
	N                int     `json:"n"`
	Cells            int64   `json:"cells"`
	NsPerOp          int64   `json:"ns_per_op"`
	McellsPerS       float64 `json:"mcells_per_s"`
	AllocsPerOp      uint64  `json:"allocs_per_op"`
	BytesPerOp       uint64  `json:"bytes_per_op"`
	PeakLatticeBytes int64   `json:"peak_lattice_bytes"`
	Steals           int64   `json:"steals,omitempty"`
	Keeps            int64   `json:"keeps,omitempty"`
	TileDims         string  `json:"tile_dims,omitempty"`
	// EvaluatedFraction is the measured fraction of lattice cells a
	// Carrillo–Lipman bounded-search kernel evaluated on its workload;
	// zero for full-lattice kernels. Note the Cells convention: the
	// calibration rows ("bounded", "astar") report Cells = evaluated cells
	// (so McellsPerS is the honest per-evaluated-cell rate the planner
	// calibrates against), while the similarity-sweep rows
	// ("bounded-idNN") report Cells = the whole lattice (so McellsPerS is
	// the effective throughput comparable to the "full" row).
	EvaluatedFraction float64 `json:"evaluated_fraction,omitempty"`
}

// benchReport is the top-level BENCH_<rev>.json document.
type benchReport struct {
	Rev        string         `json:"rev"`
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Quick      bool           `json:"quick"`
	Reps       int            `json:"reps"`
	Kernels    []kernelMetric `json:"kernels"`
}

// gitRev is the short commit hash used in the default output name, or "dev"
// outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	if rev := strings.TrimSpace(string(out)); rev != "" {
		return rev
	}
	return "dev"
}

// resolveBaseline maps -baseline auto to the newest committed
// BENCH_<rev>.json: candidates come from git's tracked files (so a
// freshly-written BENCH_ci.json never shadows the committed baseline),
// ranked by last-commit time. When commit times are unavailable — a
// shallow CI checkout whose truncated history predates the baseline
// commit, or no git at all — it falls back to the newest tracked (or, off
// git entirely, globbed) file by mtime, excluding outPath. An empty
// result with nil error means "no baseline exists; skip the diff".
func resolveBaseline(outPath string) (string, error) {
	candidates := gitTrackedBaselines()
	if candidates == nil {
		var err error
		candidates, err = filepath.Glob("BENCH_*.json")
		if err != nil {
			return "", err
		}
	}
	best, bestTime := "", int64(-1)
	for _, c := range candidates {
		if sameFile(c, outPath) {
			continue
		}
		t := gitCommitUnix(c)
		if t < 0 {
			if fi, err := os.Stat(c); err == nil {
				t = fi.ModTime().Unix()
			} else {
				continue
			}
		}
		if t > bestTime {
			best, bestTime = c, t
		}
	}
	return best, nil
}

// gitTrackedBaselines lists committed BENCH_*.json files, or nil when git
// is unavailable.
func gitTrackedBaselines() []string {
	out, err := exec.Command("git", "ls-files", "--", "BENCH_*.json").Output()
	if err != nil {
		return nil
	}
	return strings.Fields(string(out))
}

// gitCommitUnix returns the unix time of path's last commit, or -1.
func gitCommitUnix(path string) int64 {
	out, err := exec.Command("git", "log", "-1", "--format=%ct", "--", path).Output()
	if err != nil {
		return -1
	}
	t, err := strconv.ParseInt(strings.TrimSpace(string(out)), 10, 64)
	if err != nil {
		return -1
	}
	return t
}

// sameFile reports whether two paths name the same file lexically (after
// cleaning); baseline resolution only needs to exclude the file it is
// about to write.
func sameFile(a, b string) bool {
	return b != "" && filepath.Clean(a) == filepath.Clean(b)
}

// resolveBenchJSON maps the -benchjson flag to an output path: "off"
// disables, "auto" writes BENCH_<rev>.json only when the whole suite runs,
// and anything else is an explicit path that always triggers emission.
func resolveBenchJSON(flagVal string, allExperiments bool) string {
	switch flagVal {
	case "off":
		return ""
	case "auto":
		if allExperiments {
			return "BENCH_" + gitRev() + ".json"
		}
		return ""
	default:
		return flagVal
	}
}

// measureKernel times reps runs of f after one warm-up and reports the mean
// latency plus the per-run heap allocation profile.
func measureKernel(reps int, f func()) (mean time.Duration, bytesPerOp, allocsPerOp uint64) {
	if reps < 1 {
		reps = 1
	}
	f() // warm-up: page in lattices, populate the buffer arena
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed / time.Duration(reps),
		(after.TotalAlloc - before.TotalAlloc) / uint64(reps),
		(after.Mallocs - before.Mallocs) / uint64(reps)
}

// writeBenchJSON measures every kernel on seeded workloads and writes the
// report to path.
func writeBenchJSON(path string, cfg config) error {
	ctx := context.Background()
	sch := dnaSch()
	affSch, err := scoring.DNADefault().WithGaps(-4, -1)
	if err != nil {
		return err
	}
	n := pick(cfg.quick, 48, 96)
	nAff := pick(cfg.quick, 24, 48)
	tr := triple(12000, n, 0.3)
	trAff := triple(12000, nAff, 0.3)
	nPair := pick(cfg.quick, 256, 512)
	g := seq.NewGenerator(seq.DNA, 12001)
	pa := g.Random("A", nPair).Codes()
	pb := g.Random("B", nPair).Codes()

	pairCells := int64(nPair+1) * int64(nPair+1)
	lattice := func(t seq.Triple) int64 { return core.FullMatrixBytes(t) }

	// Bounded-search workloads: the calibration rows run at 80% identity
	// (the regime the planner targets); the sweep rows cover 60/80/95%.
	// Mutations follow seq.Uniform (indel rate = substitution/4) so the
	// admissible band has realistic width — the near-indel-free default
	// workload makes it degenerate, and the per-evaluated-cell rate would
	// measure the O(n²) projection overhead instead of the band fill.
	// Evaluated-cell counts are measured up front with one seeded run so
	// each row can carry its fraction and the calibration rows can report
	// Cells = evaluated.
	nB := pick(cfg.quick, 96, 160)
	type boundedLoad struct {
		tr    seq.Triple
		seed  int32
		stats core.PruneStats
	}
	boundedFor := func(genSeed int64, subRate float64) (boundedLoad, error) {
		g := seq.NewGenerator(seq.DNA, genSeed)
		t := g.RelatedTriple(nB, seq.Uniform(subRate))
		s, err := msa.CenterStarRefined(t, sch)
		if err != nil {
			return boundedLoad{}, err
		}
		_, st, err := core.AlignBounded(ctx, t, sch, core.Options{}, s.Score)
		if err != nil {
			return boundedLoad{}, err
		}
		return boundedLoad{tr: t, seed: s.Score, stats: st}, nil
	}
	b60, err := boundedFor(14060, 0.4)
	if err != nil {
		return err
	}
	b80, err := boundedFor(14080, 0.2)
	if err != nil {
		return err
	}
	b95, err := boundedFor(14095, 0.05)
	if err != nil {
		return err
	}
	_, stA60, err := core.AlignAStar(ctx, b60.tr, sch, core.Options{}, b60.seed)
	if err != nil {
		return err
	}
	runBoundedRow := func(l boundedLoad) func() {
		return func() {
			s := mustAlign(msa.CenterStarRefined(l.tr, sch))
			if _, _, err := core.AlignBounded(ctx, l.tr, sch, core.Options{}, s.Score); err != nil {
				panic(err)
			}
		}
	}

	kernels := []struct {
		name  string
		n     int
		peak  int64
		run   func()
		cells int64
		frac  float64 // evaluated fraction (bounded-search rows only)
		sched bool    // goes through the wavefront block scheduler
	}{
		{"full", n, lattice(tr), func() {
			mustAlign(core.AlignFull(ctx, tr, sch, core.Options{}))
		}, cells(tr), 0, false},
		{"full-packed", n, lattice(tr), func() {
			mustAlign(core.AlignFullPacked(ctx, tr, sch, core.Options{}))
		}, cells(tr), 0, false},
		{"full-packed-w16", n, lattice(tr) / 2, func() {
			mustAlign(core.AlignFullPacked(ctx, tr, sch, core.Options{CellWidth: 16}))
		}, cells(tr), 0, false},
		{"parallel", n, lattice(tr), func() {
			mustAlign(core.AlignParallel(ctx, tr, sch, core.Options{}))
		}, cells(tr), 0, true},
		{"parallel-packed", n, lattice(tr), func() {
			mustAlign(core.AlignParallelPacked(ctx, tr, sch, core.Options{}))
		}, cells(tr), 0, true},
		{"parallel-packed-w16", n, lattice(tr) / 2, func() {
			mustAlign(core.AlignParallelPacked(ctx, tr, sch, core.Options{CellWidth: 16}))
		}, cells(tr), 0, true},
		{"score", n, 2 * int64(tr.B.Len()+1) * int64(tr.C.Len()+1) * 4, func() {
			if _, err := core.Score(ctx, tr, sch, core.Options{}); err != nil {
				panic(err)
			}
		}, cells(tr), 0, false},
		{"linear", n, core.LinearBytes(tr), func() {
			mustAlign(core.AlignLinear(ctx, tr, sch, core.Options{}))
		}, cells(tr), 0, false},
		{"pruned", n, lattice(tr), func() {
			if _, _, err := core.AlignPruned(ctx, tr, sch, core.Options{}); err != nil {
				panic(err)
			}
		}, cells(tr), 0, false},
		{"diagonal", n, lattice(tr), func() {
			mustAlign(core.AlignDiagonal(ctx, tr, sch, core.Options{}))
		}, cells(tr), 0, false},
		{"affine7", nAff, 7 * lattice(trAff), func() {
			mustAlign(core.AlignAffine(ctx, trAff, affSch, core.Options{}))
		}, cells(trAff), 0, false},
		{"pairwise-global", nPair, pairCells * 4, func() {
			pairwise.Global(pa, pb, sch)
		}, pairCells, 0, false},
		{"pairwise-gotoh", nPair, 3 * pairCells * 4, func() {
			pairwise.GlobalAffine(pa, pb, affSch)
		}, pairCells, 0, false},
		// Calibration rows: Cells = evaluated cells, so McellsPerS is the
		// per-evaluated-cell rate plan.Calibration["bounded"/"astar"] pins.
		// The seed score is precomputed and the workload is the 60%-identity
		// triple: that band is wide enough that band fill dominates the
		// O(n²) projection planes, so the measured rate is the asymptotic
		// per-cell cost a cells/rate model can extrapolate. (At 80-95%
		// identity the band is a few thousand cells and the "rate" would
		// just be plane time divided by a near-zero cell count.)
		{"bounded", nB, b60.stats.EvaluatedCells * 4, func() {
			if _, _, err := core.AlignBounded(ctx, b60.tr, sch, core.Options{}, b60.seed); err != nil {
				panic(err)
			}
		}, b60.stats.EvaluatedCells, b60.stats.Fraction(), false},
		{"astar", nB, stA60.EvaluatedCells * 64, func() {
			if _, _, err := core.AlignAStar(ctx, b60.tr, sch, core.Options{}, b60.seed); err != nil {
				panic(err)
			}
		}, stA60.EvaluatedCells, stA60.Fraction(), false},
		// Similarity sweep: Cells = whole lattice, so McellsPerS is the
		// effective throughput comparable to the "full" row. CI asserts the
		// 80%-identity row beats "full" and evaluates ≤25% of the lattice.
		{"bounded-id60", nB, b60.stats.EvaluatedCells * 4, runBoundedRow(b60),
			b60.stats.TotalCells, b60.stats.Fraction(), false},
		{"bounded-id80", nB, b80.stats.EvaluatedCells * 4, runBoundedRow(b80),
			b80.stats.TotalCells, b80.stats.Fraction(), false},
		{"bounded-id95", nB, b95.stats.EvaluatedCells * 4, runBoundedRow(b95),
			b95.stats.TotalCells, b95.stats.Fraction(), false},
	}

	rep := benchReport{
		Rev:        gitRev(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      cfg.quick,
		Reps:       cfg.reps,
	}
	for _, k := range kernels {
		before := wavefront.Stats()
		mean, bytesPerOp, allocsPerOp := measureKernel(cfg.reps, k.run)
		m := kernelMetric{
			Kernel:            k.name,
			N:                 k.n,
			Cells:             k.cells,
			NsPerOp:           mean.Nanoseconds(),
			AllocsPerOp:       allocsPerOp,
			BytesPerOp:        bytesPerOp,
			PeakLatticeBytes:  k.peak,
			EvaluatedFraction: k.frac,
		}
		if mean > 0 {
			m.McellsPerS = float64(k.cells) / mean.Seconds() / 1e6
		}
		if k.sched {
			// Per-operation scheduler work (measureKernel runs reps+1 ops
			// including the warm-up) and the tile shape the kernel resolved.
			d := wavefront.Stats().Sub(before)
			ops := int64(cfg.reps) + 1
			m.Steals = d.Steals / ops
			m.Keeps = d.Keeps / ops
			ti, tj, tk := core.AdaptiveTileDims(k.n+1, k.n+1, k.n+1, runtime.GOMAXPROCS(0), 4)
			m.TileDims = fmt.Sprintf("%dx%dx%d", ti, tj, tk)
		}
		rep.Kernels = append(rep.Kernels, m)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	if cfg.baseline != "" {
		if err := diffBaseline(cfg.out, cfg.baseline, rep); err != nil {
			return err
		}
	}
	return nil
}

// regressionThreshold is the Mcells/s drop (relative to the committed
// baseline) past which diffBaseline warns.
const regressionThreshold = 0.10

// diffBaseline compares the just-measured kernel rates against a committed
// BENCH_<rev>.json and prints a per-kernel delta table. Regressions beyond
// regressionThreshold are flagged with "REGRESSION" but never fail the run:
// CI hosts are noisy, so the signal is a loud warning in the job log, not a
// red build.
func diffBaseline(out io.Writer, path string, cur benchReport) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	baseline := make(map[string]kernelMetric, len(base.Kernels))
	for _, k := range base.Kernels {
		baseline[k.Kernel] = k
	}
	fmt.Fprintf(out, "\nbaseline diff vs %s (rev %s):\n", path, base.Rev)
	regressions := 0
	for _, k := range cur.Kernels {
		b, ok := baseline[k.Kernel]
		if !ok || b.McellsPerS <= 0 || k.McellsPerS <= 0 {
			fmt.Fprintf(out, "  %-16s %8.2f Mcells/s  (no baseline)\n", k.Kernel, k.McellsPerS)
			continue
		}
		delta := k.McellsPerS/b.McellsPerS - 1
		mark := ""
		if delta < -regressionThreshold {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(out, "  %-16s %8.2f Mcells/s  baseline %8.2f  %+6.1f%%%s\n",
			k.Kernel, k.McellsPerS, b.McellsPerS, 100*delta, mark)
	}
	if regressions > 0 {
		fmt.Fprintf(out, "warning: %d kernel(s) regressed more than %.0f%% vs %s\n",
			regressions, 100*regressionThreshold, path)
	}
	return nil
}

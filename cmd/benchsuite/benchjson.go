package main

import (
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/pairwise"
	"repro/internal/scoring"
	"repro/internal/seq"
)

// Machine-readable kernel metrics: BENCH_<rev>.json is the perf-regression
// baseline the CI bench-smoke job archives. Each entry reports the cell
// rate, per-operation allocation profile, and predicted peak lattice bytes
// of one alignment kernel on a fixed seeded workload, so two revisions can
// be diffed without re-parsing text tables.

// kernelMetric is one kernel's measurement.
type kernelMetric struct {
	Kernel           string  `json:"kernel"`
	N                int     `json:"n"`
	Cells            int64   `json:"cells"`
	NsPerOp          int64   `json:"ns_per_op"`
	McellsPerS       float64 `json:"mcells_per_s"`
	AllocsPerOp      uint64  `json:"allocs_per_op"`
	BytesPerOp       uint64  `json:"bytes_per_op"`
	PeakLatticeBytes int64   `json:"peak_lattice_bytes"`
}

// benchReport is the top-level BENCH_<rev>.json document.
type benchReport struct {
	Rev        string         `json:"rev"`
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Quick      bool           `json:"quick"`
	Reps       int            `json:"reps"`
	Kernels    []kernelMetric `json:"kernels"`
}

// gitRev is the short commit hash used in the default output name, or "dev"
// outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	if rev := strings.TrimSpace(string(out)); rev != "" {
		return rev
	}
	return "dev"
}

// resolveBenchJSON maps the -benchjson flag to an output path: "off"
// disables, "auto" writes BENCH_<rev>.json only when the whole suite runs,
// and anything else is an explicit path that always triggers emission.
func resolveBenchJSON(flagVal string, allExperiments bool) string {
	switch flagVal {
	case "off":
		return ""
	case "auto":
		if allExperiments {
			return "BENCH_" + gitRev() + ".json"
		}
		return ""
	default:
		return flagVal
	}
}

// measureKernel times reps runs of f after one warm-up and reports the mean
// latency plus the per-run heap allocation profile.
func measureKernel(reps int, f func()) (mean time.Duration, bytesPerOp, allocsPerOp uint64) {
	if reps < 1 {
		reps = 1
	}
	f() // warm-up: page in lattices, populate the buffer arena
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < reps; i++ {
		f()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed / time.Duration(reps),
		(after.TotalAlloc - before.TotalAlloc) / uint64(reps),
		(after.Mallocs - before.Mallocs) / uint64(reps)
}

// writeBenchJSON measures every kernel on seeded workloads and writes the
// report to path.
func writeBenchJSON(path string, cfg config) error {
	ctx := context.Background()
	sch := dnaSch()
	affSch, err := scoring.DNADefault().WithGaps(-4, -1)
	if err != nil {
		return err
	}
	n := pick(cfg.quick, 48, 96)
	nAff := pick(cfg.quick, 24, 48)
	tr := triple(12000, n, 0.3)
	trAff := triple(12000, nAff, 0.3)
	nPair := pick(cfg.quick, 256, 512)
	g := seq.NewGenerator(seq.DNA, 12001)
	pa := g.Random("A", nPair).Codes()
	pb := g.Random("B", nPair).Codes()

	pairCells := int64(nPair+1) * int64(nPair+1)
	lattice := func(t seq.Triple) int64 { return core.FullMatrixBytes(t) }
	kernels := []struct {
		name  string
		n     int
		peak  int64
		run   func()
		cells int64
	}{
		{"full", n, lattice(tr), func() {
			mustAlign(core.AlignFull(ctx, tr, sch, core.Options{}))
		}, cells(tr)},
		{"parallel", n, lattice(tr), func() {
			mustAlign(core.AlignParallel(ctx, tr, sch, core.Options{}))
		}, cells(tr)},
		{"score", n, 2 * int64(tr.B.Len()+1) * int64(tr.C.Len()+1) * 4, func() {
			if _, err := core.Score(ctx, tr, sch, core.Options{}); err != nil {
				panic(err)
			}
		}, cells(tr)},
		{"linear", n, core.LinearBytes(tr), func() {
			mustAlign(core.AlignLinear(ctx, tr, sch, core.Options{}))
		}, cells(tr)},
		{"pruned", n, lattice(tr), func() {
			if _, _, err := core.AlignPruned(ctx, tr, sch, core.Options{}); err != nil {
				panic(err)
			}
		}, cells(tr)},
		{"diagonal", n, lattice(tr), func() {
			mustAlign(core.AlignDiagonal(ctx, tr, sch, core.Options{}))
		}, cells(tr)},
		{"affine7", nAff, 7 * lattice(trAff), func() {
			mustAlign(core.AlignAffine(ctx, trAff, affSch, core.Options{}))
		}, cells(trAff)},
		{"pairwise-global", nPair, pairCells * 4, func() {
			pairwise.Global(pa, pb, sch)
		}, pairCells},
		{"pairwise-gotoh", nPair, 3 * pairCells * 4, func() {
			pairwise.GlobalAffine(pa, pb, affSch)
		}, pairCells},
	}

	rep := benchReport{
		Rev:        gitRev(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      cfg.quick,
		Reps:       cfg.reps,
	}
	for _, k := range kernels {
		mean, bytesPerOp, allocsPerOp := measureKernel(cfg.reps, k.run)
		m := kernelMetric{
			Kernel:           k.name,
			N:                k.n,
			Cells:            k.cells,
			NsPerOp:          mean.Nanoseconds(),
			AllocsPerOp:      allocsPerOp,
			BytesPerOp:       bytesPerOp,
			PeakLatticeBytes: k.peak,
		}
		if mean > 0 {
			m.McellsPerS = float64(k.cells) / mean.Seconds() / 1e6
		}
		rep.Kernels = append(rep.Kernels, m)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

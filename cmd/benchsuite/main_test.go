package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The smoke tests run the cheapest experiments at quick sizes; they verify
// the drivers execute end to end and emit the expected table structure.

func TestRunT2(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-exp", "t2"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"benchsuite:", "T2:", "full bytes", "ratio", "expected:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-reps", "1", "-exp", "t2,t3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "T2:") || !strings.Contains(out.String(), "T3:") {
		t.Fatalf("expected both tables:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "zzz"}, &out); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-notaflag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.title == "" || e.run == nil {
			t.Errorf("experiment %q incomplete", e.id)
		}
	}
	if len(experiments) != 15 {
		t.Errorf("expected 15 experiments, found %d", len(experiments))
	}
}

// TestBenchJSON drives the -benchjson path end to end: an explicit path
// forces emission even for a partial run, and the document must parse with
// sane per-kernel metrics.
func TestBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	var out strings.Builder
	if err := run([]string{"-quick", "-reps", "1", "-exp", "t2", "-benchjson", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH json does not parse: %v", err)
	}
	if rep.Rev == "" || rep.GoVersion == "" || rep.GOMAXPROCS < 1 {
		t.Fatalf("missing environment metadata: %+v", rep)
	}
	want := map[string]bool{"full": false, "full-packed": false, "full-packed-w16": false,
		"parallel": false, "parallel-packed": false, "parallel-packed-w16": false,
		"score": false, "linear": false, "pruned": false, "diagonal": false, "affine7": false,
		"pairwise-global": false, "pairwise-gotoh": false,
		"bounded": false, "astar": false,
		"bounded-id60": false, "bounded-id80": false, "bounded-id95": false}
	// The bounded-search rows carry an evaluated fraction; every one of
	// them must report a meaningful band (0 < fraction <= 1).
	fractional := map[string]bool{"bounded": true, "astar": true,
		"bounded-id60": true, "bounded-id80": true, "bounded-id95": true}
	for _, k := range rep.Kernels {
		if _, ok := want[k.Kernel]; !ok {
			t.Errorf("unexpected kernel %q", k.Kernel)
			continue
		}
		want[k.Kernel] = true
		if k.McellsPerS <= 0 || k.NsPerOp <= 0 || k.Cells <= 0 || k.PeakLatticeBytes <= 0 {
			t.Errorf("kernel %q has degenerate metrics: %+v", k.Kernel, k)
		}
		if fractional[k.Kernel] != (k.EvaluatedFraction > 0 && k.EvaluatedFraction <= 1) {
			t.Errorf("kernel %q has evaluated_fraction %v", k.Kernel, k.EvaluatedFraction)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("kernel %q missing from report", name)
		}
	}
}

// TestBenchJSONOffAndAuto pins the gating: "off" never writes, and "auto"
// does not write for a partial experiment selection.
func TestBenchJSONOffAndAuto(t *testing.T) {
	dir := t.TempDir()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)
	for _, flagVal := range []string{"off", "auto"} {
		var out strings.Builder
		if err := run([]string{"-quick", "-exp", "t2", "-benchjson", flagVal}, &out); err != nil {
			t.Fatal(err)
		}
		matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) != 0 {
			t.Fatalf("-benchjson %s wrote %v for a partial run", flagVal, matches)
		}
	}
}

func TestRunCSVMode(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-exp", "t2", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# T2:") || !strings.Contains(out.String(), "n,full bytes,linear bytes,ratio") {
		t.Fatalf("CSV output malformed:\n%s", out.String())
	}
}

func TestRunF8(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-reps", "1", "-exp", "f8"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"F8:", "steal-rate", "tile"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunF10(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-reps", "1", "-exp", "f10"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"F10:", "fanned time", "serial time", "gap"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q:\n%s", want, out.String())
		}
	}
}

// TestBaselineDiff drives -baseline end to end: against a fabricated
// baseline with absurdly high rates every kernel is a >10% regression, and
// the diff warns without failing the run.
func TestBaselineDiff(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "BENCH_base.json")
	base := benchReport{Rev: "testbase", Kernels: []kernelMetric{
		{Kernel: "full", McellsPerS: 1e9},
		{Kernel: "parallel", McellsPerS: 1e9},
	}}
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(basePath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "BENCH_cur.json")
	var out strings.Builder
	if err := run([]string{"-quick", "-reps", "1", "-exp", "t2",
		"-benchjson", outPath, "-baseline", basePath}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "baseline diff vs") || !strings.Contains(s, "testbase") {
		t.Fatalf("no baseline diff emitted:\n%s", s)
	}
	if !strings.Contains(s, "REGRESSION") || !strings.Contains(s, "warning:") {
		t.Fatalf("fabricated 1e9 Mcells/s baseline did not flag regressions:\n%s", s)
	}
	if !strings.Contains(s, "(no baseline)") {
		t.Fatalf("kernels absent from the baseline should be marked:\n%s", s)
	}
}

// TestResolveBaselineAuto pins the -baseline auto selection rules: inside
// this repository the committed baseline wins over untracked BENCH files,
// and outside git the newest file by mtime wins with the output path
// excluded.
func TestResolveBaselineAuto(t *testing.T) {
	// In the repo: must resolve to a committed BENCH_*.json (never the
	// outPath we are about to write).
	got, err := resolveBaseline("BENCH_ci.json")
	if err != nil {
		t.Fatal(err)
	}
	if tracked := gitTrackedBaselines(); len(tracked) > 0 {
		found := false
		for _, c := range tracked {
			if c == got {
				found = true
			}
		}
		if !found {
			t.Errorf("resolveBaseline = %q, not among committed baselines %v", got, tracked)
		}
	}

	// Outside git: mtime ordering with the output path excluded.
	dir := t.TempDir()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd) //nolint:errcheck
	old := time.Now().Add(-time.Hour)
	for name, mtime := range map[string]time.Time{
		"BENCH_aaa.json": old,
		"BENCH_new.json": time.Now(),
		"BENCH_out.json": time.Now().Add(time.Hour), // the file being written
	} {
		if err := os.WriteFile(name, []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(name, mtime, mtime); err != nil {
			t.Fatal(err)
		}
	}
	got, err = resolveBaseline("BENCH_out.json")
	if err != nil {
		t.Fatal(err)
	}
	if got != "BENCH_new.json" {
		t.Errorf("resolveBaseline outside git = %q, want BENCH_new.json", got)
	}
}

// TestRunBaselineAutoWithoutBaselines checks that -baseline auto degrades
// to a notice, not an error, when no baseline exists.
func TestRunBaselineAutoWithoutBaselines(t *testing.T) {
	dir := t.TempDir()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd) //nolint:errcheck
	var out strings.Builder
	if err := run([]string{"-quick", "-reps", "1", "-exp", "t2",
		"-benchjson", "BENCH_out.json", "-baseline", "auto"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no committed BENCH_*.json found") {
		t.Fatalf("missing skip notice:\n%s", out.String())
	}
}

package main

import (
	"strings"
	"testing"
)

// The smoke tests run the cheapest experiments at quick sizes; they verify
// the drivers execute end to end and emit the expected table structure.

func TestRunT2(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-exp", "t2"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"benchsuite:", "T2:", "full bytes", "ratio", "expected:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-reps", "1", "-exp", "t2,t3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "T2:") || !strings.Contains(out.String(), "T3:") {
		t.Fatalf("expected both tables:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "zzz"}, &out); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-notaflag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments {
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.title == "" || e.run == nil {
			t.Errorf("experiment %q incomplete", e.id)
		}
	}
	if len(experiments) != 12 {
		t.Errorf("expected 12 experiments, found %d", len(experiments))
	}
}

func TestRunCSVMode(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-exp", "t2", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# T2:") || !strings.Contains(out.String(), "n,full bytes,linear bytes,ratio") {
		t.Fatalf("CSV output malformed:\n%s", out.String())
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/plan"
)

// runCalibrate is the -calibrate mode: re-derive the planner's Mcells/s
// calibration table from the newest committed BENCH_*.json and compare it
// against the constants committed in internal/plan (calib.go). Drift past
// plan.CalibrationDriftMax on any kernel fails the run — the CI gate that
// keeps the planner's duration predictions honest as kernels get faster
// or slower. The re-derived Go table is always printed, so fixing a
// failure is a copy-paste into calib.go.
func runCalibrate(out io.Writer) error {
	path, err := resolveBaseline("")
	if err != nil {
		return fmt.Errorf("benchsuite: -calibrate: %w", err)
	}
	if path == "" {
		return fmt.Errorf("benchsuite: -calibrate: no committed BENCH_*.json baseline found (run from the repository root)")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("benchsuite: -calibrate: %w", err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("benchsuite: -calibrate: parse %s: %w", path, err)
	}
	measured := make(map[string]float64, len(rep.Kernels))
	for _, k := range rep.Kernels {
		measured[k.Kernel] = k.McellsPerS
	}

	names := make([]string, 0, len(plan.Calibration))
	for name := range plan.Calibration {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(out, "calibration check vs %s (rev %s); committed table rev %s\n",
		path, rep.Rev, plan.CalibrationRev)
	drifted := 0
	for _, name := range names {
		committed := plan.Calibration[name]
		got, ok := measured[name]
		if !ok || got <= 0 {
			fmt.Fprintf(out, "  %-16s committed %8.2f Mcells/s  (not in baseline)\n", name, committed)
			continue
		}
		drift := got/committed - 1
		mark := ""
		if math.Abs(drift) > plan.CalibrationDriftMax {
			mark = "  DRIFT"
			drifted++
		}
		fmt.Fprintf(out, "  %-16s committed %8.2f Mcells/s  baseline %8.2f  %+6.1f%%%s\n",
			name, committed, got, 100*drift, mark)
	}

	fmt.Fprintf(out, "\nre-derived table (internal/plan/calib.go):\n")
	fmt.Fprintf(out, "const CalibrationRev = %q\n", rep.Rev)
	fmt.Fprintln(out, "var Calibration = map[string]float64{")
	for _, name := range names {
		if got, ok := measured[name]; ok && got > 0 {
			fmt.Fprintf(out, "\t%q: %.2f,\n", name, got)
		}
	}
	fmt.Fprintln(out, "}")

	if drifted > 0 {
		return fmt.Errorf("benchsuite: -calibrate: %d kernel rate(s) drifted more than %.0f%% from the committed table (rev %s); update internal/plan/calib.go from the re-derived table above",
			drifted, 100*plan.CalibrationDriftMax, plan.CalibrationRev)
	}
	fmt.Fprintf(out, "\ncalibration ok: every kernel within %.0f%% of the committed table\n", 100*plan.CalibrationDriftMax)
	return nil
}

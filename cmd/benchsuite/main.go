// Command benchsuite regenerates every table and figure of the
// (reconstructed) evaluation as plain-text tables; EXPERIMENTS.md is its
// output annotated against the expected shapes. Workloads are seeded and
// identical to the ones in bench_test.go.
//
// Usage:
//
//	benchsuite                 # run everything; also writes BENCH_<rev>.json
//	benchsuite -exp f1,t3      # selected experiments
//	benchsuite -quick          # reduced sizes and repetitions
//	benchsuite -reps 5         # more repetitions per configuration
//	benchsuite -benchjson p    # force machine-readable kernel metrics to p
//	benchsuite -benchjson off  # never write kernel metrics
//	benchsuite -baseline auto  # diff kernel rates vs the newest committed BENCH_*.json
//
// BENCH_<rev>.json records per-kernel Mcells/s, allocs/op, bytes/op, and
// predicted peak lattice bytes on seeded workloads — the machine-readable
// perf-regression baseline consumed by the CI bench-smoke job. With the
// default -benchjson auto it is written only when every experiment runs.
//
// On hosts with fewer cores than a worker setting, measured wall-clock
// times stay flat while the "sim-speedup" column — the makespan of the
// exact Run3D schedule under list scheduling — carries the
// hardware-independent scaling curve (see DESIGN.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	repro "repro"

	"repro/internal/bench"
	"repro/internal/commsim"
	"repro/internal/core"
	"repro/internal/msa"
	"repro/internal/prof"
	"repro/internal/scoring"
	"repro/internal/seq"
	"repro/internal/wavefront"
)

type config struct {
	quick    bool
	reps     int
	csv      bool
	out      io.Writer
	baseline string
}

// render writes a finished table in the selected output format.
func (c config) render(t *bench.Table) error {
	if c.csv {
		return t.RenderCSV(c.out)
	}
	return t.Render(c.out)
}

type experiment struct {
	id    string
	title string
	run   func(cfg config) error
}

var experiments = []experiment{
	{"t1", "T1: sequential runtime vs length", runT1},
	{"t2", "T2: memory, full matrix vs linear space", runT2},
	{"f1", "F1: speedup vs workers", runF1},
	{"f2", "F2: parallel efficiency vs workers", runF2},
	{"f3", "F3: block-size ablation", runF3},
	{"t3", "T3: exact vs heuristic quality", runT3},
	{"f4", "F4: Carrillo-Lipman pruning vs identity", runF4},
	{"t4", "T4: unequal lengths, constant volume", runT4},
	{"f5", "F5: parallel linear-space scaling", runF5},
	{"t5", "T5: affine vs linear gap model", runT5},
	{"f6", "F6: blocked vs plane-synchronized schedule", runF6},
	{"f7", "F7: simulated cluster speedup under alpha-beta communication", runF7},
	{"f8", "F8: work-stealing scheduler behaviour vs workers", runF8},
	{"f9", "F9: Carrillo-Lipman bounded search vs identity", runF9},
	{"f10", "F10: guide-tree progressive MSA, batch-fanned vs serial merges", runF10},
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchsuite", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		expFlag   = fs.String("exp", "all", "comma-separated experiment ids (t1,t2,f1,f2,f3,t3,f4,t4,f5,t5,f6,f7,f8,f9,f10) or 'all'")
		quick     = fs.Bool("quick", false, "reduced sizes and repetitions")
		reps      = fs.Int("reps", 3, "repetitions per configuration")
		csvOut    = fs.Bool("csv", false, "emit CSV instead of text tables")
		benchjson = fs.String("benchjson", "auto", "kernel metrics JSON: 'auto' (BENCH_<rev>.json when running all), 'off', or an explicit path")
		baseline  = fs.String("baseline", "", "committed BENCH_<rev>.json to diff kernel Mcells/s against (warns on >10% regressions, never fails); 'auto' picks the newest committed baseline")
		calibrate = fs.Bool("calibrate", false, "check the planner's calibration table against the newest committed BENCH_*.json and exit (fails on >25% drift)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("benchsuite: %w", err)
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return fmt.Errorf("benchsuite: %w", err)
	}
	defer stopProf()

	cfg := config{quick: *quick, reps: *reps, csv: *csvOut, out: stdout, baseline: *baseline}
	if cfg.quick && *reps == 3 {
		cfg.reps = 1
	}
	if *calibrate {
		return runCalibrate(cfg.out)
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	fmt.Fprintf(cfg.out, "benchsuite: GOMAXPROCS=%d quick=%v reps=%d\n\n", runtime.GOMAXPROCS(0), cfg.quick, cfg.reps)
	ran := 0
	for _, e := range experiments {
		if !want["all"] && !want[e.id] {
			continue
		}
		if err := e.run(cfg); err != nil {
			return fmt.Errorf("benchsuite: %s: %w", e.id, err)
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("benchsuite: no experiment matches -exp %q", *expFlag)
	}
	path := resolveBenchJSON(*benchjson, want["all"])
	if path == "" && cfg.baseline != "" {
		// A baseline diff needs fresh kernel metrics; measure them even when
		// the -benchjson policy would not have.
		path = "BENCH_" + gitRev() + ".json"
	}
	if cfg.baseline == "auto" {
		resolved, err := resolveBaseline(path)
		if err != nil {
			return fmt.Errorf("benchsuite: -baseline auto: %w", err)
		}
		if resolved == "" {
			fmt.Fprintln(cfg.out, "\n-baseline auto: no committed BENCH_*.json found; skipping the diff")
		}
		cfg.baseline = resolved
	}
	if path != "" {
		if err := writeBenchJSON(path, cfg); err != nil {
			return fmt.Errorf("benchsuite: benchjson: %w", err)
		}
		fmt.Fprintf(cfg.out, "\nwrote kernel metrics to %s\n", path)
	}
	return nil
}

func dnaSch() *scoring.Scheme { return scoring.DNADefault() }

func triple(seed int64, n int, subRate float64) seq.Triple {
	g := seq.NewGenerator(seq.DNA, seed)
	return g.RelatedTriple(n, seq.MutationModel{
		SubstitutionRate: subRate,
		InsertionRate:    0.02,
		DeletionRate:     0.02,
	})
}

func cells(tr seq.Triple) int64 {
	return int64(tr.A.Len()+1) * int64(tr.B.Len()+1) * int64(tr.C.Len()+1)
}

func pick[T any](quick bool, q, full T) T {
	if quick {
		return q
	}
	return full
}

func runT1(cfg config) error {
	lengths := pick(cfg.quick, []int{32, 64, 96}, []int{32, 64, 96, 128, 192, 256})
	tab := bench.NewTable("T1: sequential runtime vs length (DNA, ~70% identity)",
		"n", "cells", "full time", "full Mcells/s", "linear time", "linear/full")
	tab.Caption = "expected: cubic growth; linear-space ~1.5-2.5x slower than full"
	for _, n := range lengths {
		tr := triple(1000+int64(n), n, 0.3)
		tFull := bench.Measure(cfg.reps, func() {
			mustAlign(core.AlignFull(context.Background(), tr, dnaSch(), core.Options{}))
		})
		tLin := bench.Measure(cfg.reps, func() {
			mustAlign(core.AlignLinear(context.Background(), tr, dnaSch(), core.Options{}))
		})
		tab.AddRowf(n, cells(tr), tFull.Mean,
			bench.CellRate(cells(tr), tFull.Mean)/1e6,
			tLin.Mean, float64(tLin.Mean)/float64(tFull.Mean))
	}
	return cfg.render(tab)
}

func runT2(cfg config) error {
	lengths := pick(cfg.quick, []int{64, 128, 256}, []int{64, 128, 256, 384, 512})
	tab := bench.NewTable("T2: lattice memory, full matrix vs linear space",
		"n", "full bytes", "linear bytes", "ratio")
	tab.Caption = "expected: full ~ 4(n+1)^3 bytes; ratio grows linearly with n"
	for _, n := range lengths {
		tr := triple(2000+int64(n), n, 0.3)
		full := core.FullMatrixBytes(tr)
		lin := core.LinearBytes(tr)
		tab.AddRowf(n, full, lin, float64(full)/float64(lin))
	}
	return cfg.render(tab)
}

func workerSweep() []int { return []int{1, 2, 4, 8, 16} }

func runF1(cfg config) error {
	n := pick(cfg.quick, 96, 160)
	tr := triple(3000, n, 0.3)
	// The measured aligner resolves an adaptive tile shape per worker count;
	// the simulated schedule must use the same per-w shape or the curves
	// diverge for scheduling rather than hardware reasons.
	spansFor := func(w int) (si, sj, sk []wavefront.Span) {
		ti, tj, tk := core.AdaptiveTileDims(tr.A.Len()+1, tr.B.Len()+1, tr.C.Len()+1, w, 4)
		return wavefront.Partition(tr.A.Len()+1, ti),
			wavefront.Partition(tr.B.Len()+1, tj),
			wavefront.Partition(tr.C.Len()+1, tk)
	}
	s1i, s1j, s1k := spansFor(1)
	cost1 := wavefront.SpanCost(s1i, s1j, s1k, 1)
	sim1 := wavefront.Simulate(len(s1i), len(s1j), len(s1k), 1, cost1)
	procs := runtime.NumCPU()
	tab := bench.NewTable(fmt.Sprintf("F1: speedup vs workers (n=%d, adaptive tiles)", n),
		"workers", "tile", "time", "meas-speedup", "sim-speedup")
	tab.Caption = fmt.Sprintf("expected: near-linear sim-speedup until the wavefront width saturates;\n"+
		"measured speedup tracks it only when the host has that many cores\n"+
		"* = workers exceed the host's %d core(s); meas-speedup is invalid there,\n"+
		"read sim-speedup for the scaling curve", procs)
	var t1 time.Duration
	for _, w := range workerSweep() {
		ti, tj, tk := core.AdaptiveTileDims(tr.A.Len()+1, tr.B.Len()+1, tr.C.Len()+1, w, 4)
		si, sj, sk := spansFor(w)
		cost := wavefront.SpanCost(si, sj, sk, 1)
		t := bench.Measure(cfg.reps, func() {
			mustAlign(core.AlignParallel(context.Background(), tr, dnaSch(), core.Options{Workers: w}))
		})
		if w == 1 {
			t1 = t.Mean
		}
		sim := sim1 / wavefront.Simulate(len(si), len(sj), len(sk), w, cost)
		// The trailing space on unstarred rows keeps the column aligned:
		// Render right-aligns only purely numeric cells.
		meas := fmt.Sprintf("%.2f", bench.Speedup(t1, t.Mean))
		if w > procs {
			meas += "*"
		} else {
			meas += " "
		}
		tab.AddRowf(w, fmt.Sprintf("%dx%dx%d", ti, tj, tk), t.Mean, meas, sim)
	}
	return cfg.render(tab)
}

func runF2(cfg config) error {
	lengths := pick(cfg.quick, []int{64, 96}, []int{96, 160, 224})
	tab := bench.NewTable("F2: parallel efficiency vs workers",
		"n", "workers", "time", "sim-speedup", "sim-efficiency")
	tab.Caption = "expected: efficiency decays as workers approach the wavefront width;\nlarger n sustains efficiency to higher worker counts"
	for _, n := range lengths {
		tr := triple(4000+int64(n), n, 0.3)
		si := wavefront.Partition(tr.A.Len()+1, core.DefaultBlockSize)
		sj := wavefront.Partition(tr.B.Len()+1, core.DefaultBlockSize)
		sk := wavefront.Partition(tr.C.Len()+1, core.DefaultBlockSize)
		cost := wavefront.SpanCost(si, sj, sk, 1)
		sim1 := wavefront.Simulate(len(si), len(sj), len(sk), 1, cost)
		for _, w := range workerSweep() {
			t := bench.Measure(cfg.reps, func() {
				mustAlign(core.AlignParallel(context.Background(), tr, dnaSch(), core.Options{Workers: w}))
			})
			sim := sim1 / wavefront.Simulate(len(si), len(sj), len(sk), w, cost)
			tab.AddRowf(n, w, t.Mean, sim, sim/float64(w))
		}
	}
	return cfg.render(tab)
}

func runF3(cfg config) error {
	n := pick(cfg.quick, 96, 160)
	tr := triple(5000, n, 0.3)
	tab := bench.NewTable(fmt.Sprintf("F3: block-size ablation (n=%d, workers=GOMAXPROCS)", n),
		"block", "blocks/axis", "time", "sim-speedup(8w)")
	tab.Caption = "expected: U-shape — small tiles pay scheduling overhead, huge tiles starve the pool"
	for _, bs := range []int{4, 8, 16, 32, 64} {
		t := bench.Measure(cfg.reps, func() {
			mustAlign(core.AlignParallel(context.Background(), tr, dnaSch(), core.Options{BlockSize: bs}))
		})
		si := wavefront.Partition(tr.A.Len()+1, bs)
		sj := wavefront.Partition(tr.B.Len()+1, bs)
		sk := wavefront.Partition(tr.C.Len()+1, bs)
		cost := wavefront.SpanCost(si, sj, sk, 1)
		sim := wavefront.Simulate(len(si), len(sj), len(sk), 1, cost) /
			wavefront.Simulate(len(si), len(sj), len(sk), 8, cost)
		tab.AddRowf(bs, len(si), t.Mean, sim)
	}
	return cfg.render(tab)
}

func runT3(cfg config) error {
	n := pick(cfg.quick, 60, 100)
	tab := bench.NewTable(fmt.Sprintf("T3: exact vs heuristic quality (n=%d)", n),
		"identity", "algo", "SP score", "Δ vs exact", "time")
	tab.Caption = "expected: exact >= heuristics always; heuristics orders of magnitude faster"
	for _, id := range []float64{0.5, 0.7, 0.9} {
		tr := triple(6000+int64(id*100), n, 1-id)
		var exact int32
		tExact := bench.Measure(cfg.reps, func() {
			a := mustAlign(core.AlignParallel(context.Background(), tr, dnaSch(), core.Options{}))
			exact = a.Score
		})
		tab.AddRowf(fmt.Sprintf("%.0f%%", id*100), "exact", exact, 0, tExact.Mean)
		var cs int32
		tCS := bench.Measure(cfg.reps, func() {
			a := mustAlign(msa.CenterStar(tr, dnaSch()))
			cs = a.Score
		})
		tab.AddRowf("", "center-star", cs, int(cs-exact), tCS.Mean)
		var pg int32
		tPG := bench.Measure(cfg.reps, func() {
			a := mustAlign(msa.Progressive(tr, dnaSch()))
			pg = a.Score
		})
		tab.AddRowf("", "progressive", pg, int(pg-exact), tPG.Mean)
	}
	return cfg.render(tab)
}

func runF4(cfg config) error {
	n := pick(cfg.quick, 64, 96)
	tab := bench.NewTable(fmt.Sprintf("F4: Carrillo-Lipman pruning vs identity (n=%d)", n),
		"identity", "evaluated", "total", "fraction", "pruned time", "full time")
	tab.Caption = "expected: evaluated fraction drops sharply as identity rises"
	for _, id := range []float64{0.5, 0.7, 0.9, 0.95} {
		tr := triple(7000+int64(id*100), n, 1-id)
		bound := mustAlign(msa.CenterStar(tr, dnaSch()))
		var st core.PruneStats
		tPruned := bench.Measure(cfg.reps, func() {
			aln, stats, err := core.AlignPruned(context.Background(), tr, dnaSch(), core.Options{}, bound.Score)
			if err != nil {
				panic(err)
			}
			_ = aln
			st = stats
		})
		tFull := bench.Measure(cfg.reps, func() {
			mustAlign(core.AlignFull(context.Background(), tr, dnaSch(), core.Options{}))
		})
		tab.AddRowf(fmt.Sprintf("%.0f%%", id*100), st.EvaluatedCells, st.TotalCells,
			st.Fraction(), tPruned.Mean, tFull.Mean)
	}
	return cfg.render(tab)
}

func runT4(cfg config) error {
	shapes := pick(cfg.quick,
		[][3]int{{48, 48, 48}, {96, 48, 24}, {192, 24, 24}},
		[][3]int{{64, 64, 64}, {128, 64, 32}, {256, 64, 16}, {512, 32, 16}})
	tab := bench.NewTable("T4: unequal lengths at constant volume",
		"shape", "cells", "time", "Mcells/s")
	tab.Caption = "expected: runtime tracks the product n*m*p, so times stay roughly constant"
	for i, s := range shapes {
		g := seq.NewGenerator(seq.DNA, 8000+int64(i))
		tr := g.TripleWithLengths(s[0], s[1], s[2], seq.Uniform(0.3))
		t := bench.Measure(cfg.reps, func() {
			mustAlign(core.AlignParallel(context.Background(), tr, dnaSch(), core.Options{}))
		})
		tab.AddRowf(fmt.Sprintf("%dx%dx%d", s[0], s[1], s[2]), cells(tr), t.Mean,
			bench.CellRate(cells(tr), t.Mean)/1e6)
	}
	return cfg.render(tab)
}

func runF5(cfg config) error {
	n := pick(cfg.quick, 96, 256)
	tr := triple(9000, n, 0.3)
	tab := bench.NewTable(fmt.Sprintf("F5: parallel linear-space scaling (n=%d)", n),
		"workers", "time", "lattice bytes", "full-matrix bytes")
	tab.Caption = "expected: linear-space parallelizes like the full matrix while using\nquadratic instead of cubic lattice memory"
	for _, w := range workerSweep() {
		t := bench.Measure(cfg.reps, func() {
			mustAlign(core.AlignParallelLinear(context.Background(), tr, dnaSch(), core.Options{Workers: w}))
		})
		tab.AddRowf(w, t.Mean, core.LinearBytes(tr), core.FullMatrixBytes(tr))
	}
	return cfg.render(tab)
}

func runT5(cfg config) error {
	lengths := pick(cfg.quick, []int{24, 48}, []int{32, 64, 96})
	affSch, err := scoring.DNADefault().WithGaps(-4, -1)
	if err != nil {
		return err
	}
	tab := bench.NewTable("T5: affine vs linear gap model",
		"n", "linear time", "affine time", "affine-linear-space time", "affine/linear", "linear score", "affine score")
	tab.Caption = "expected: affine within the 7x-49x state/transition-work envelope;\nits linear-space variant pays ~2x more time for 7 planes instead of 7 lattices"
	for _, n := range lengths {
		tr := triple(10000+int64(n), n, 0.3)
		var linScore, affScore int32
		tLin := bench.Measure(cfg.reps, func() {
			linScore = mustAlign(core.AlignFull(context.Background(), tr, dnaSch(), core.Options{})).Score
		})
		tAff := bench.Measure(cfg.reps, func() {
			affScore = mustAlign(core.AlignAffine(context.Background(), tr, affSch, core.Options{})).Score
		})
		tAffLin := bench.Measure(cfg.reps, func() {
			aln := mustAlign(core.AlignAffineLinear(context.Background(), tr, affSch, core.Options{}))
			if aln.Score != affScore {
				panic(fmt.Sprintf("affine-linear score %d != affine %d", aln.Score, affScore))
			}
		})
		tab.AddRowf(n, tLin.Mean, tAff.Mean, tAffLin.Mean, float64(tAff.Mean)/float64(tLin.Mean), linScore, affScore)
	}
	return cfg.render(tab)
}

func runF6(cfg config) error {
	lengths := pick(cfg.quick, []int{48, 96}, []int{64, 128, 192})
	tab := bench.NewTable("F6: blocked wavefront vs plane-synchronized schedule (workers=GOMAXPROCS)",
		"n", "blocked time", "diagonal time", "diagonal/blocked", "pruned-parallel time")
	tab.Caption = "expected: blocked tiles beat per-plane barriers, more so as n grows;\npruned-parallel wins further on similar sequences"
	for _, n := range lengths {
		tr := triple(11000+int64(n), n, 0.3)
		tBlocked := bench.Measure(cfg.reps, func() {
			mustAlign(core.AlignParallel(context.Background(), tr, dnaSch(), core.Options{}))
		})
		tDiag := bench.Measure(cfg.reps, func() {
			mustAlign(core.AlignDiagonal(context.Background(), tr, dnaSch(), core.Options{}))
		})
		bound := mustAlign(msa.CenterStar(tr, dnaSch()))
		tPruned := bench.Measure(cfg.reps, func() {
			_, _, err := core.AlignPrunedParallel(context.Background(), tr, dnaSch(), core.Options{}, bound.Score)
			if err != nil {
				panic(err)
			}
		})
		tab.AddRowf(n, tBlocked.Mean, tDiag.Mean,
			float64(tDiag.Mean)/float64(tBlocked.Mean), tPruned.Mean)
	}
	return cfg.render(tab)
}

func runF7(cfg config) error {
	n := pick(cfg.quick, 128, 512)
	bs := core.DefaultBlockSize
	si := wavefront.Partition(n+1, bs)
	sj := wavefront.Partition(n+1, bs)
	sk := wavefront.Partition(n+1, bs)
	tab := bench.NewTable(
		fmt.Sprintf("F7: simulated 2007 gigabit cluster, n=%d, block=%d (alpha=50us, beta=10ns/B, 20ns/cell)", n, bs),
		"ranks", "dist", "makespan", "speedup", "efficiency", "messages", "MB sent")
	tab.Caption = "expected: cyclic layouts sustain speedup where slabs stall on the wavefront;\nefficiency decays with ranks as faces cross the network"
	for _, ranks := range []int{1, 2, 4, 8, 16} {
		for _, dist := range []commsim.Dist{commsim.DistSlabI, commsim.DistCyclicI, commsim.DistCyclicIJ} {
			res, err := commsim.Simulate(si, sj, sk, commsim.GigabitCluster2007(ranks), dist)
			if err != nil {
				return err
			}
			tab.AddRowf(ranks, dist.String(),
				time.Duration(res.Makespan*float64(time.Second)),
				res.Speedup(), res.Efficiency(ranks),
				res.Messages, float64(res.BytesSent)/1e6)
		}
	}
	if err := cfg.render(tab); err != nil {
		return err
	}

	// Second panel: block-size trade-off at a fixed rank count — the
	// communication-aware version of F3.
	tab2 := bench.NewTable(
		fmt.Sprintf("F7b: block-size trade-off on 8 simulated ranks (n=%d, cyclic-i)", n),
		"block", "makespan", "speedup", "messages", "MB sent")
	tab2.Caption = "expected: small blocks drown in alpha; huge blocks starve ranks — the U-shape"
	for _, b := range []int{4, 8, 16, 32, 64} {
		si := wavefront.Partition(n+1, b)
		sj := wavefront.Partition(n+1, b)
		sk := wavefront.Partition(n+1, b)
		res, err := commsim.Simulate(si, sj, sk, commsim.GigabitCluster2007(8), commsim.DistCyclicI)
		if err != nil {
			return err
		}
		tab2.AddRowf(b, time.Duration(res.Makespan*float64(time.Second)),
			res.Speedup(), res.Messages, float64(res.BytesSent)/1e6)
	}
	return cfg.render(tab2)
}

func runF8(cfg config) error {
	n := pick(cfg.quick, 96, 160)
	tr := triple(13000, n, 0.3)
	tab := bench.NewTable(fmt.Sprintf("F8: work-stealing scheduler behaviour vs workers (n=%d, adaptive tiles)", n),
		"workers", "tile", "time", "blocks", "keeps", "steals", "steal-rate")
	tab.Caption = "expected: keeps dominate (the cache-hot handoff); the steal-rate stays\n" +
		"in the low percents — stealing is the load-balancing escape hatch, not\n" +
		"the common path. Counters are per alignment; on a host with fewer\n" +
		"cores than workers the pool may fall back to solo runs (all zeros)."
	for _, w := range workerSweep() {
		ti, tj, tk := core.AdaptiveTileDims(tr.A.Len()+1, tr.B.Len()+1, tr.C.Len()+1, w, 4)
		var d wavefront.SchedStats
		t := bench.Measure(cfg.reps, func() {
			before := wavefront.Stats()
			mustAlign(core.AlignParallel(context.Background(), tr, dnaSch(), core.Options{Workers: w}))
			d = wavefront.Stats().Sub(before)
		})
		stealRate := 0.0
		if d.Blocks > 0 {
			stealRate = float64(d.Steals) / float64(d.Blocks)
		}
		tab.AddRowf(w, fmt.Sprintf("%dx%dx%d", ti, tj, tk), t.Mean,
			d.Blocks, d.Keeps, d.Steals, fmt.Sprintf("%.1f%%", 100*stealRate))
	}
	return cfg.render(tab)
}

func runF9(cfg config) error {
	n := pick(cfg.quick, 96, 160)
	tab := bench.NewTable(fmt.Sprintf("F9: Carrillo-Lipman bounded search vs identity (n=%d, center-star-refined seed)", n),
		"identity", "evaluated", "total", "fraction", "bounded time", "astar time", "full time")
	tab.Caption = "expected: evaluated fraction and bounded time collapse as identity rises;\n" +
		"the band beats the full fill from ~80% identity, the A* frontier joins\n" +
		"once the fraction drops into the single percents"
	for _, id := range []float64{0.6, 0.8, 0.95} {
		// seq.Uniform mutations (indel = substitution/4): the default
		// near-indel-free triple() makes the admissible band degenerate,
		// which would overstate the pruning the planner can expect.
		g := seq.NewGenerator(seq.DNA, 14000+int64(id*100))
		tr := g.RelatedTriple(n, seq.Uniform(1-id))
		seed := mustAlign(msa.CenterStarRefined(tr, dnaSch()))
		var st core.PruneStats
		tBounded := bench.Measure(cfg.reps, func() {
			_, stats, err := core.AlignBounded(context.Background(), tr, dnaSch(), core.Options{}, seed.Score)
			if err != nil {
				panic(err)
			}
			st = stats
		})
		tAStar := bench.Measure(cfg.reps, func() {
			if _, _, err := core.AlignAStar(context.Background(), tr, dnaSch(), core.Options{}, seed.Score); err != nil {
				panic(err)
			}
		})
		tFull := bench.Measure(cfg.reps, func() {
			mustAlign(core.AlignFull(context.Background(), tr, dnaSch(), core.Options{}))
		})
		tab.AddRowf(fmt.Sprintf("%.0f%%", id*100), st.EvaluatedCells, st.TotalCells,
			st.Fraction(), tBounded.Mean, tAStar.Mean, tFull.Mean)
	}
	return cfg.render(tab)
}

func runF10(cfg config) error {
	counts := pick(cfg.quick, []int{4, 6}, []int{4, 6, 8, 12})
	length := 60
	tab := bench.NewTable(fmt.Sprintf("F10: guide-tree progressive MSA (%d residues/seq), batch-fanned vs serial merges", length),
		"N", "merges", "batched", "fanned time", "serial time", "serial/fanned", "score", "upper bound", "gap")
	tab.Caption = "expected: wall-clock grows roughly linearly with the ceil((N-1)/2)-per-level\n" +
		"merge count; fanning a level's independent triples through the batch LPT\n" +
		"path beats serial merges once a level holds >=2 of them; scores are\n" +
		"identical between the two modes — the fan changes scheduling, not results"
	for _, n := range counts {
		g := seq.NewGenerator(seq.DNA, 15000+int64(n))
		fam := g.RelatedFamily(n, length, seq.MutationModel{
			SubstitutionRate: 0.1,
			InsertionRate:    0.02,
			DeletionRate:     0.02,
		})
		var fanned *repro.MSAResult
		tFanned := bench.Measure(cfg.reps, func() {
			fanned = mustAlign(repro.AlignMSA(context.Background(), fam, repro.MSAOptions{}))
		})
		var serial *repro.MSAResult
		tSerial := bench.Measure(cfg.reps, func() {
			serial = mustAlign(repro.AlignMSA(context.Background(), fam, repro.MSAOptions{SerialMerges: true}))
		})
		if serial.Score != fanned.Score {
			return fmt.Errorf("f10: N=%d serial score %d != fanned score %d", n, serial.Score, fanned.Score)
		}
		tab.AddRowf(n, len(fanned.Merges), fanned.BatchedMerges, tFanned.Mean, tSerial.Mean,
			float64(tSerial.Mean)/float64(tFanned.Mean),
			fanned.Score, fanned.UpperBound, fanned.OptimalityGap)
	}
	return cfg.render(tab)
}

func mustAlign[T any](aln T, err error) T {
	if err != nil {
		panic(err)
	}
	return aln
}

package main

import (
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, io.Discard); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
}

func TestRunReportsListenError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := run([]string{"-addr", ln.Addr().String()}, io.Discard); err == nil {
		t.Fatal("run bound an already-bound address")
	}
}

// TestServeDrainExitsCleanly boots the real daemon, aligns once, then
// delivers SIGTERM and asserts the drain contract: /readyz flips to 503
// while the process is still serving, and run returns nil (exit 0).
func TestServeDrainExitsCleanly(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-drain-grace", "300ms", "-workers", "2"}, io.Discard)
	}()
	base := "http://" + addr
	waitFor(t, func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	resp, err := http.Post(base+"/v1/align", "application/json",
		strings.NewReader(`{"a":"ACGTACGTAC","b":"ACGTTCGTAC","c":"ACGAACGTAC"}`))
	if err != nil {
		t.Fatalf("align: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("align status = %d, want 200", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	// During the grace window the listener is still up and readyz reports
	// draining.
	waitFor(t, func() bool {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil (exit 0)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after SIGTERM")
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Command alignd serves three-sequence alignment over an HTTP JSON API
// with bounded admission, request coalescing, and graceful drain.
//
// Usage:
//
//	alignd -addr :8080 -workers 8 -queue 64 -max-in-flight 8
//	curl -s localhost:8080/v1/align -d '{"a":"ACGT","b":"ACGT","c":"AGGT"}'
//
// Endpoints:
//
//	POST /v1/align        one triple; small requests are coalesced per tick
//	POST /v1/align/batch  many triples in one submission
//	POST /v1/plan         dry run: the execution plan for a request, no alignment
//	POST /v1/msa          progressive N-sequence MSA built from exact 3-way merges
//	POST /v1/msa/plan     dry run: the guide tree's merge schedule and byte estimates
//	GET  /healthz         liveness (always 200 while the process runs)
//	GET  /readyz          readiness (503 once draining)
//	GET  /statsz          queue/pool gauges, counters, latency quantiles
//	     /debug/pprof/*   live profiling
//
// Overload is shed, never queued unboundedly: when the admission queue is
// full /v1/align answers 429 with a Retry-After hint, and /statsz's
// queue_depth stays within -queue. With -max-lattice-bytes set, requests
// whose planner-estimated lattice footprint exceeds the cap are shed with
// 413 before taking a queue slot; /statsz reports est_bytes_in_flight and
// planned_downgrades so the cap can be sized from observed pressure.
//
// With -cache-bytes set, exact results are cached by content address:
// repeated identical requests answer from the cache without queueing,
// concurrent identical requests collapse into one computation, and
// near-duplicate requests (within -cache-neardup-identity k-mer identity
// of a cached triple) are served by a verified seeded re-align that is
// bit-identical to a full alignment. Responses on the cached path carry
// an X-Cache header (hit, miss, near-dup, or collapsed) and /statsz
// grows cache_* counters. Caching changes observable shedding behavior
// (collapsed duplicates no longer consume queue slots), so it is off by
// default.
//
// On SIGTERM (or SIGINT) alignd drains: /readyz flips to 503 immediately,
// new alignment requests are refused with 503, the -drain-grace window
// lets load balancers observe the flip, in-flight requests run to
// completion (bounded by -drain-timeout), and the process exits 0. A
// second signal aborts immediately with a non-zero exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultpoint"
	"repro/internal/prof"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("alignd", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "alignment worker-pool size (0 = GOMAXPROCS)")
		queue        = fs.Int("queue", 64, "admission queue bound (waiting + running requests); beyond it requests shed with 429")
		maxInFlight  = fs.Int("max-in-flight", 0, "concurrently executing submissions (0 = workers)")
		coalesceTick = fs.Duration("coalesce-tick", 2*time.Millisecond, "buffering window for coalescing small aligns into one batch (0 disables)")
		coalesceMax  = fs.Int("coalesce-max", 16, "flush a coalesced batch early at this many requests")
		deadline     = fs.Duration("deadline", 0, "default per-request alignment deadline (0 = none)")
		maxDeadline  = fs.Duration("max-deadline", 30*time.Second, "cap on per-request deadlines")
		maxSeq       = fs.Int("max-seq", 4096, "per-sequence residue cap")
		maxMsaSeqs   = fs.Int("max-msa-seqs", 16, "per-/v1/msa family size cap (hard limit 64)")
		maxBody      = fs.Int64("max-body", 8<<20, "request body byte cap")
		maxLattice   = fs.Int64("max-lattice-bytes", 0, "planner-estimated lattice byte cap per alignment; larger requests shed with 413 before queueing (0 = no cap)")
		memSoft      = fs.Int64("mem-soft-limit", 0, "heap soft limit in bytes: approaching it degrades new admissions through the planner's downgrade ladder, exceeding it sheds with 429 (0 disables the pressure guard)")
		memFrac      = fs.Float64("mem-degrade-fraction", 0.85, "fraction of -mem-soft-limit at which admissions start degrading")
		cacheBytes   = fs.Int64("cache-bytes", 0, "result cache byte budget: identical requests answer from the cache and concurrent identical requests collapse into one computation (0 disables)")
		cacheMinCost = fs.Duration("cache-min-cost", 0, "only cache results whose planner-estimated duration is at least this (0 = cache everything admitted)")
		cacheNearDup = fs.Float64("cache-neardup-identity", 0.90, "minimum k-mer identity for serving a near-duplicate request via a verified seeded re-align (outside (0,1) disables the prescreen)")
		drainGrace   = fs.Duration("drain-grace", time.Second, "pause between flipping /readyz and closing the listener")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "bound on waiting for in-flight requests during drain")
		cpuProf      = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf      = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("alignd: %w", err)
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return fmt.Errorf("alignd: %w", err)
	}
	defer stopProf()

	logger := log.New(logw, "alignd: ", log.LstdFlags)
	srv := server.New(server.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		MaxInFlight:        *maxInFlight,
		CoalesceTick:       *coalesceTick,
		CoalesceMax:        *coalesceMax,
		DefaultDeadline:    *deadline,
		MaxDeadline:        *maxDeadline,
		MaxSequenceLen:     *maxSeq,
		MaxMsaSequences:    *maxMsaSeqs,
		MaxBodyBytes:       *maxBody,
		MaxLatticeBytes:    *maxLattice,
		MemSoftLimitBytes:  *memSoft,
		MemDegradeFraction: *memFrac,
		CacheBytes:         *cacheBytes,
		CacheMinCost:       *cacheMinCost,
		CacheNearDupIdentity: func() float64 {
			if *cacheNearDup <= 0 || *cacheNearDup >= 1 {
				return -1 // explicit off: withDefaults would re-default 0
			}
			return *cacheNearDup
		}(),
	})
	if armed := faultpoint.Armed(); len(armed) > 0 {
		logger.Printf("fault points armed via %s: %v", faultpoint.EnvVar, armed)
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return fmt.Errorf("alignd: %w", err)
	case <-sigCtx.Done():
	}

	// Drain: flip readiness first so load balancers route away, keep the
	// listener up for the grace window, then wait for in-flight requests.
	logger.Printf("drain: signal received; flipping /readyz")
	srv.BeginDrain()
	stop() // a second signal now kills the process immediately
	time.Sleep(*drainGrace)
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	err = hs.Shutdown(shCtx)
	srv.Close()
	if err != nil {
		return fmt.Errorf("alignd: drain timed out: %w", err)
	}
	if serveErr := <-errc; !errors.Is(serveErr, http.ErrServerClosed) {
		return fmt.Errorf("alignd: %w", serveErr)
	}
	logger.Printf("drain: complete; exiting")
	return nil
}

// Command seqgen writes deterministic synthetic FASTA workloads: three
// sequences descended from a common random ancestor under a configurable
// mutation model. The experiment suite, the kernel differential tests
// (internal/core/tables_diff_test.go), and the examples draw their inputs
// from the same seq.Generator, so any workload in this repository — and any
// failing differential case — is reproduced exactly by its (alphabet, seed,
// lengths, rates) tuple; nothing needs to be checked in as FASTA.
//
// Usage:
//
//	seqgen -alphabet dna -n 200 -sub 0.2 -indel 0.05 -seed 42 > triple.fasta
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/seq"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("seqgen", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		alphabet = fs.String("alphabet", "dna", "residue alphabet: dna, rna, protein")
		n        = fs.Int("n", 120, "ancestor length")
		nb       = fs.Int("nb", 0, "exact length of sequence B (0 = natural)")
		nc       = fs.Int("nc", 0, "exact length of sequence C (0 = natural)")
		sub      = fs.Float64("sub", 0.2, "per-residue substitution rate")
		indel    = fs.Float64("indel", 0.05, "per-residue insertion and deletion rate")
		seed     = fs.Int64("seed", 1, "generator seed")
		width    = fs.Int("width", 60, "FASTA line width")
	)
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("seqgen: %w", err)
	}

	alpha, err := alphabetByName(*alphabet)
	if err != nil {
		return err
	}
	if *n < 0 {
		return fmt.Errorf("seqgen: negative length %d", *n)
	}
	if *sub < 0 || *sub > 1 || *indel < 0 || *indel > 1 {
		return fmt.Errorf("seqgen: rates must lie in [0,1] (sub=%v indel=%v)", *sub, *indel)
	}
	g := seq.NewGenerator(alpha, *seed)
	model := seq.MutationModel{SubstitutionRate: *sub, InsertionRate: *indel, DeletionRate: *indel}
	var tr seq.Triple
	if *nb > 0 || *nc > 0 {
		b, c := *nb, *nc
		if b == 0 {
			b = *n
		}
		if c == 0 {
			c = *n
		}
		tr = g.TripleWithLengths(*n, b, c, model)
	} else {
		tr = g.RelatedTriple(*n, model)
	}
	return seq.WriteFASTA(stdout, []*seq.Sequence{tr.A, tr.B, tr.C}, *width)
}

func alphabetByName(name string) (*seq.Alphabet, error) {
	switch name {
	case "dna":
		return seq.DNA, nil
	case "rna":
		return seq.RNA, nil
	case "protein":
		return seq.Protein, nil
	default:
		return nil, fmt.Errorf("seqgen: unknown alphabet %q (want dna, rna, or protein)", name)
	}
}

package main

import (
	"strings"
	"testing"

	"repro/internal/seq"
)

func TestRunDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-n", "50", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "50", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different output")
	}
	var c strings.Builder
	if err := run([]string{"-n", "50", "-seed", "10"}, &c); err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical output")
	}
}

// TestRunSeedGolden pins the byte-exact output of a fixed seed. The
// differential and benchmark suites regenerate their workloads from seeds
// rather than checked-in FASTA, so this output must stay stable across
// revisions; math/rand's generator is stable for a fixed seed by Go's
// compatibility promise.
func TestRunSeedGolden(t *testing.T) {
	const want = ">A\nTACGCCATTTGTAACACTTGGAA\n>B\nCTAGTCTCAATCCTGAACAATAGGAT\n>C\nATTGTCAATCGTAAGAACAGGAG\n"
	var out strings.Builder
	if err := run([]string{"-n", "24", "-seed", "42"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.String() != want {
		t.Fatalf("seed 42 output changed:\ngot:\n%swant:\n%s", out.String(), want)
	}
}

func TestRunProducesValidTriple(t *testing.T) {
	for _, alpha := range []string{"dna", "rna", "protein"} {
		var out strings.Builder
		if err := run([]string{"-alphabet", alpha, "-n", "80"}, &out); err != nil {
			t.Fatalf("%s: %v", alpha, err)
		}
		var a *seq.Alphabet
		switch alpha {
		case "dna":
			a = seq.DNA
		case "rna":
			a = seq.RNA
		case "protein":
			a = seq.Protein
		}
		tr, err := seq.ReadTripleFASTA(strings.NewReader(out.String()), a)
		if err != nil {
			t.Fatalf("%s: output not a valid triple: %v", alpha, err)
		}
		if tr.A.Len() == 0 || tr.B.Len() == 0 || tr.C.Len() == 0 {
			t.Fatalf("%s: empty sequence generated", alpha)
		}
	}
}

func TestRunExactLengths(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "60", "-nb", "40", "-nc", "80"}, &out); err != nil {
		t.Fatal(err)
	}
	tr, err := seq.ReadTripleFASTA(strings.NewReader(out.String()), seq.DNA)
	if err != nil {
		t.Fatal(err)
	}
	if tr.A.Len() != 60 || tr.B.Len() != 40 || tr.C.Len() != 80 {
		t.Fatalf("lengths = %d/%d/%d, want 60/40/80", tr.A.Len(), tr.B.Len(), tr.C.Len())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-alphabet", "klingon"},
		{"-n", "-5"},
		{"-sub", "1.5"},
		{"-indel", "-0.1"},
		{"-notaflag"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v): error expected", args)
		}
	}
}

// Command alignctl drives an alignd server from the shell through the
// retrying client package: transient failures (429 shed, 503 drain or
// fault injection, transport drops) are masked by backoff-with-jitter
// retries honoring the server's Retry-After hints, so a flaky-but-alive
// server still yields an answer and an exit code of 0.
//
// Usage:
//
//	alignctl align -addr http://localhost:8080 -a ACGT -b ACGT -c AGGT
//	alignctl align -fasta triple.fa -algorithm affine -deadline 2s
//	alignctl plan  -a ACGT -b ACGT -c AGGT -max-memory-bytes 1048576
//	alignctl msa   -fasta family.fa -explain
//	alignctl msa   -seqs ACGT,ACGA,AGGT,ACTT -serial
//	alignctl stats
//	alignctl ready
//
// Commands:
//
//	align   submit one alignment and print the aligned rows and score
//	plan    dry-run the request and print the server's execution plan
//	msa     submit an N-sequence progressive MSA (-plan for a dry run)
//	stats   print the /statsz document
//	ready   exit 0 when the server accepts work, 1 while it drains
//
// Retry behavior is tuned with -retries, -attempt-timeout, and -hedge
// (align/plan only); -json switches align output to the raw response
// document for scripting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/client"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "alignctl: give a command: align, plan, msa, stats, or ready")
		return 2
	}
	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "align":
		err = runAlign(rest, stdout, false)
	case "plan":
		err = runAlign(rest, stdout, true)
	case "msa":
		err = runMsa(rest, stdout)
	case "stats":
		err = runStats(rest, stdout)
	case "ready":
		err = runReady(rest, stdout)
	case "-h", "-help", "--help", "help":
		fmt.Fprintln(stdout, "usage: alignctl <align|plan|msa|stats|ready> [flags]")
		return 0
	default:
		fmt.Fprintf(stderr, "alignctl: unknown command %q (want align, plan, msa, stats, or ready)\n", cmd)
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "alignctl: %v\n", err)
		return 1
	}
	return 0
}

// clientFlags registers the connection/retry flags shared by all commands
// and returns a constructor bound to them.
func clientFlags(fs *flag.FlagSet) func() (*client.Client, context.Context, context.CancelFunc) {
	addr := fs.String("addr", "http://localhost:8080", "alignd base URL")
	retries := fs.Int("retries", 3, "retries after the first attempt on 429/502/503 or transport errors")
	attemptTimeout := fs.Duration("attempt-timeout", 10*time.Second, "per-attempt timeout (0 = none)")
	timeout := fs.Duration("timeout", 2*time.Minute, "overall call timeout including retries (0 = none)")
	hedge := fs.Duration("hedge", 0, "hedge delay: race a second request after this long unanswered (0 disables)")
	return func() (*client.Client, context.Context, context.CancelFunc) {
		c := client.New(client.Config{
			BaseURL:        *addr,
			MaxRetries:     *retries,
			AttemptTimeout: *attemptTimeout,
			HedgeDelay:     *hedge,
		})
		ctx := context.Background()
		cancel := context.CancelFunc(func() {})
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, *timeout)
		}
		return c, ctx, cancel
	}
}

// runAlign serves both align and plan: same request construction, one
// different endpoint.
func runAlign(args []string, stdout io.Writer, planOnly bool) error {
	name := "align"
	if planOnly {
		name = "plan"
	}
	fs := flag.NewFlagSet("alignctl "+name, flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	mk := clientFlags(fs)
	var (
		a         = fs.String("a", "", "first sequence residues")
		b         = fs.String("b", "", "second sequence residues")
		c         = fs.String("c", "", "third sequence residues")
		fasta     = fs.String("fasta", "", "three-record FASTA file (\"-\" for stdin) instead of -a/-b/-c")
		alphabet  = fs.String("alphabet", "", "dna, rna, or protein (server default: dna)")
		scheme    = fs.String("scheme", "", "scoring scheme name (server default for the alphabet)")
		algorithm = fs.String("algorithm", "", "algorithm name (empty = server auto)")
		deadline  = fs.Duration("deadline", 0, "server-side alignment deadline (0 = server default)")
		maxMem    = fs.Int64("max-memory-bytes", 0, "soft planning budget: downgrade kernels instead of rejecting (0 = none)")
		asJSON    = fs.Bool("json", false, "print the raw response document")
	)
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	req := client.AlignRequest{
		A: *a, B: *b, C: *c,
		Alphabet:       *alphabet,
		Scheme:         *scheme,
		Algorithm:      *algorithm,
		DeadlineMS:     int64(*deadline / time.Millisecond),
		MaxMemoryBytes: *maxMem,
	}
	if *fasta != "" {
		var doc []byte
		var err error
		if *fasta == "-" {
			doc, err = io.ReadAll(os.Stdin)
		} else {
			doc, err = os.ReadFile(*fasta)
		}
		if err != nil {
			return fmt.Errorf("%s: reading fasta: %w", name, err)
		}
		req.FASTA = string(doc)
	}
	cl, ctx, cancel := mk()
	defer cancel()
	if planOnly {
		pl, err := cl.Plan(ctx, &req)
		if err != nil {
			return err
		}
		return printJSON(stdout, pl)
	}
	res, err := cl.Align(ctx, &req)
	if err != nil {
		return err
	}
	if *asJSON {
		return printJSON(stdout, res)
	}
	for i, row := range res.Rows {
		fmt.Fprintf(stdout, "%-10s %s\n", res.Names[i], row)
	}
	fmt.Fprintf(stdout, "score=%d algorithm=%s columns=%d elapsed_ms=%.3f", res.Score, res.Algorithm, res.Columns, res.ElapsedMS)
	if res.Coalesced {
		fmt.Fprint(stdout, " coalesced")
	}
	if res.Cache != "" {
		fmt.Fprintf(stdout, " cache=%s", res.Cache)
	}
	if res.Degraded {
		fmt.Fprintf(stdout, " DEGRADED (%s)", res.DegradedCause)
	}
	fmt.Fprintln(stdout)
	return nil
}

// runMsa submits an N-sequence progressive MSA, or with -plan prints the
// server's dry-run merge schedule.
func runMsa(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("alignctl msa", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	mk := clientFlags(fs)
	var (
		seqs      = fs.String("seqs", "", "comma-separated residue strings (2-64 sequences)")
		fasta     = fs.String("fasta", "", "multi-record FASTA file (\"-\" for stdin) instead of -seqs")
		alphabet  = fs.String("alphabet", "", "dna, rna, or protein (server default: dna)")
		scheme    = fs.String("scheme", "", "scoring scheme name (server default for the alphabet)")
		algorithm = fs.String("algorithm", "", "3-way merge algorithm (empty = server auto)")
		deadline  = fs.Duration("deadline", 0, "server-side deadline for the whole progressive run (0 = server default)")
		maxMem    = fs.Int64("max-memory-bytes", 0, "request-level planning budget split across concurrent merges (0 = none)")
		guideK    = fs.Int("guide-k", 0, "guide-tree k-mer size (0 = server default)")
		refine    = fs.Int("refine-rounds", 0, "refinement rounds after the progressive pass (negative disables)")
		serial    = fs.Bool("serial", false, "run merges serially instead of fanning through the batch scheduler")
		explain   = fs.Bool("explain", false, "print the guide tree and per-merge plans with the alignment")
		planOnly  = fs.Bool("plan", false, "dry-run: print the merge schedule without aligning")
		asJSON    = fs.Bool("json", false, "print the raw response document")
	)
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("msa: %w", err)
	}
	req := client.MsaRequest{
		Alphabet:       *alphabet,
		Scheme:         *scheme,
		Algorithm:      *algorithm,
		DeadlineMS:     int64(*deadline / time.Millisecond),
		MaxMemoryBytes: *maxMem,
		GuideK:         *guideK,
		RefineRounds:   *refine,
		SerialMerges:   *serial,
		Explain:        *explain,
	}
	if *seqs != "" {
		req.Sequences = strings.Split(*seqs, ",")
	}
	if *fasta != "" {
		var doc []byte
		var err error
		if *fasta == "-" {
			doc, err = io.ReadAll(os.Stdin)
		} else {
			doc, err = os.ReadFile(*fasta)
		}
		if err != nil {
			return fmt.Errorf("msa: reading fasta: %w", err)
		}
		req.FASTA = string(doc)
	}
	cl, ctx, cancel := mk()
	defer cancel()
	if *planOnly {
		pl, err := cl.MsaPlan(ctx, &req)
		if err != nil {
			return err
		}
		return printJSON(stdout, pl)
	}
	res, err := cl.Msa(ctx, &req)
	if err != nil {
		return err
	}
	if *asJSON {
		return printJSON(stdout, res)
	}
	for i, row := range res.Rows {
		fmt.Fprintf(stdout, "%-10s %s\n", res.Names[i], row)
	}
	fmt.Fprintf(stdout, "score=%d upper_bound=%d gap=%d sequences=%d columns=%d batched_merges=%d elapsed_ms=%.3f",
		res.Score, res.UpperBound, res.OptimalityGap, res.NumSequences, res.Columns, res.BatchedMerges, res.ElapsedMS)
	if res.Degraded {
		fmt.Fprint(stdout, " DEGRADED")
	}
	fmt.Fprintln(stdout)
	if *explain {
		fmt.Fprint(stdout, res.GuideTree)
		for _, m := range res.Merges {
			fmt.Fprintf(stdout, "merge level=%d members=%v out=%d n_way=%d batch_size=%d",
				m.Level, m.Members, m.Out, m.NWay, m.BatchSize)
			if m.Algorithm != "" {
				fmt.Fprintf(stdout, " algorithm=%s", m.Algorithm)
			}
			fmt.Fprintln(stdout)
		}
	}
	return nil
}

func runStats(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("alignctl stats", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	mk := clientFlags(fs)
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	cl, ctx, cancel := mk()
	defer cancel()
	st, err := cl.Stats(ctx)
	if err != nil {
		return err
	}
	return printJSON(stdout, st)
}

func runReady(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("alignctl ready", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	mk := clientFlags(fs)
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("ready: %w", err)
	}
	cl, ctx, cancel := mk()
	defer cancel()
	if err := cl.Ready(ctx); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "ready")
	return nil
}

func printJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

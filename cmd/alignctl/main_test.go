package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	repro "repro"
	"repro/internal/faultpoint"
	"repro/internal/server"
)

const testFASTA = ">s1\nACGTACGT\n>s2\nACGACGT\n>s3\nACGTACG\n"

// newAlignd boots a real alignd behind httptest for the CLI to talk to.
func newAlignd(t *testing.T) *httptest.Server {
	t.Helper()
	s := server.New(server.Config{CoalesceTick: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

// runCtl runs the CLI entry point and returns (exit code, stdout, stderr).
func runCtl(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCtlAlign(t *testing.T) {
	ts := newAlignd(t)
	code, out, errOut := runCtl(t, "align", "-addr", ts.URL, "-a", "ACGTACGT", "-b", "ACGACGT", "-c", "ACGTACG")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"score=", "algorithm=", "columns="} {
		if !strings.Contains(out, want) {
			t.Errorf("align output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(strings.TrimSpace(out), "\n") + 1; lines != 4 {
		t.Errorf("want 3 aligned rows + 1 summary line, got %d lines:\n%s", lines, out)
	}
}

func TestCtlAlignJSON(t *testing.T) {
	ts := newAlignd(t)
	code, out, errOut := runCtl(t, "align", "-addr", ts.URL, "-json", "-a", "ACGTACGT", "-b", "ACGACGT", "-c", "ACGTACG")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, `"score"`) || !strings.Contains(out, `"rows"`) {
		t.Fatalf("-json output is not the response document:\n%s", out)
	}
}

func TestCtlAlignFASTA(t *testing.T) {
	ts := newAlignd(t)
	path := filepath.Join(t.TempDir(), "triple.fa")
	if err := os.WriteFile(path, []byte(testFASTA), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCtl(t, "align", "-addr", ts.URL, "-fasta", path)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "score=") {
		t.Fatalf("fasta align output:\n%s", out)
	}
}

func TestCtlAlignMasksInjectedFaults(t *testing.T) {
	t.Cleanup(faultpoint.Reset)
	if err := faultpoint.Arm("server.admit", "first:2"); err != nil {
		t.Fatal(err)
	}
	ts := newAlignd(t)
	code, out, errOut := runCtl(t, "align", "-addr", ts.URL, "-retries", "4", "-a", "ACGTACGT", "-b", "ACGACGT", "-c", "ACGTACG")
	if code != 0 {
		t.Fatalf("exit = %d under injected 503s (retries should mask them), stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "score=") {
		t.Fatalf("masked align output:\n%s", out)
	}
}

func TestCtlPlan(t *testing.T) {
	ts := newAlignd(t)
	code, out, errOut := runCtl(t, "plan", "-addr", ts.URL, "-a", "ACGTACGT", "-b", "ACGACGT", "-c", "ACGTACG")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, `"algorithm"`) {
		t.Fatalf("plan output is not a plan document:\n%s", out)
	}
}

func TestCtlStatsAndReady(t *testing.T) {
	ts := newAlignd(t)
	code, out, errOut := runCtl(t, "stats", "-addr", ts.URL)
	if code != 0 {
		t.Fatalf("stats exit = %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, `"completed"`) {
		t.Fatalf("stats output:\n%s", out)
	}
	code, out, _ = runCtl(t, "ready", "-addr", ts.URL)
	if code != 0 || !strings.Contains(out, "ready") {
		t.Fatalf("ready exit = %d output %q", code, out)
	}
}

func TestCtlErrors(t *testing.T) {
	code, _, errOut := runCtl(t, "frobnicate")
	if code != 2 || !strings.Contains(errOut, "unknown command") {
		t.Fatalf("unknown command: exit %d stderr %q", code, errOut)
	}
	code, _, _ = runCtl(t)
	if code != 2 {
		t.Fatalf("no command: exit %d, want 2", code)
	}
	ts := newAlignd(t)
	// An empty request is a 400 — terminal, reported as exit 1.
	code, _, errOut = runCtl(t, "align", "-addr", ts.URL, "-retries", "0")
	if code != 1 || errOut == "" {
		t.Fatalf("validation failure: exit %d stderr %q", code, errOut)
	}
}

// Keep the repro import anchored: the FASTA constant must actually parse
// as a triple, or the other tests assert against garbage.
func TestCtlFASTAFixtureValid(t *testing.T) {
	if _, err := repro.ReadTripleFASTA(strings.NewReader(testFASTA), repro.DNA); err != nil {
		t.Fatalf("test fixture invalid: %v", err)
	}
}

const testFamilyFASTA = ">f1\nACGTACGTAC\n>f2\nACGTACGAAC\n>f3\nACGGACGTAC\n>f4\nACGTACCTAC\n>f5\nAGGTACGTAC\n>f6\nACGTACGTCC\n"

func TestCtlMsa(t *testing.T) {
	ts := newAlignd(t)
	code, out, errOut := runCtl(t, "msa", "-addr", ts.URL,
		"-seqs", "ACGTACGT,ACGACGT,ACGTACG,AGGTACGT")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"score=", "upper_bound=", "gap=", "sequences=4"} {
		if !strings.Contains(out, want) {
			t.Errorf("msa output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(strings.TrimSpace(out), "\n") + 1; lines != 5 {
		t.Errorf("want 4 aligned rows + 1 summary line, got %d lines:\n%s", lines, out)
	}
}

func TestCtlMsaFASTAExplain(t *testing.T) {
	ts := newAlignd(t)
	path := filepath.Join(t.TempDir(), "family.fa")
	if err := os.WriteFile(path, []byte(testFamilyFASTA), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCtl(t, "msa", "-addr", ts.URL, "-fasta", path, "-explain")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"guide tree over 6 leaves", "merge level=", "batch_size="} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestCtlMsaPlan(t *testing.T) {
	ts := newAlignd(t)
	code, out, errOut := runCtl(t, "msa", "-addr", ts.URL, "-plan",
		"-seqs", "ACGTACGT,ACGACGT,ACGTACG,AGGTACGT,ACCTACGT")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, `"peak_level_bytes"`) || !strings.Contains(out, `"merges"`) {
		t.Fatalf("msa -plan output is not a plan document:\n%s", out)
	}
}

// Command verify3 checks a claimed three-sequence alignment: it parses an
// aligned FASTA file (three equal-length gapped rows), validates its
// structure, recomputes its SP score independently, and — unless -no-opt
// is given — compares it against the true optimum for its sequences.
//
// Usage:
//
//	align3 -in triple.fasta -format fasta > aln.fasta
//	verify3 -in aln.fasta                  # exits 0 iff optimal
//	verify3 -in aln.fasta -no-opt          # structural + score check only
//
// Exit status: 0 valid and optimal (or -no-opt), 1 invalid input or
// sub-optimal alignment.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	repro "repro"
	"repro/internal/seq"
)

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run(args []string, stdin io.Reader, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("verify3", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		in       = fs.String("in", "-", "aligned FASTA with 3 gapped rows ('-' = stdin)")
		alphabet = fs.String("alphabet", "dna", "residue alphabet: dna, rna, protein")
		scheme   = fs.String("scheme", "", "scoring scheme (default per alphabet)")
		noOpt    = fs.Bool("no-opt", false, "skip the optimality check (structure and score only)")
	)
	if err := fs.Parse(args); err != nil {
		return 1, fmt.Errorf("verify3: %w", err)
	}

	var alpha *seq.Alphabet
	switch *alphabet {
	case "dna":
		alpha = seq.DNA
	case "rna":
		alpha = seq.RNA
	case "protein":
		alpha = seq.Protein
	default:
		return 1, fmt.Errorf("verify3: unknown alphabet %q", *alphabet)
	}
	r := stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return 1, err
		}
		defer f.Close()
		r = f
	}
	r, err := seq.MaybeDecompress(r)
	if err != nil {
		return 1, err
	}
	aln, err := repro.ParseAlignedFASTA(r, alpha)
	if err != nil {
		return 1, fmt.Errorf("verify3: %w", err)
	}

	sch, err := schemeFor(*scheme, alpha)
	if err != nil {
		return 1, err
	}
	score := aln.SPScore(sch)
	fmt.Fprintf(stdout, "structure: valid (%d columns)\nsp score: %d\n", aln.Columns(), score)
	if *noOpt {
		return 0, nil
	}

	res, err := repro.Align(aln.Triple, repro.Options{Scheme: sch})
	if err != nil {
		return 1, fmt.Errorf("verify3: recomputing optimum: %w", err)
	}
	fmt.Fprintf(stdout, "optimum: %d\n", res.Score)
	if score < res.Score {
		fmt.Fprintf(stdout, "verdict: SUB-OPTIMAL by %d\n", res.Score-score)
		return 1, nil
	}
	fmt.Fprintln(stdout, "verdict: OPTIMAL")
	return 0, nil
}

func schemeFor(name string, alpha *seq.Alphabet) (*repro.Scheme, error) {
	if name == "" {
		return repro.DefaultScheme(alpha)
	}
	s, ok := repro.SchemeByName(name)
	if !ok {
		return nil, fmt.Errorf("verify3: unknown scheme %q", name)
	}
	return s, nil
}

package main

import (
	"strings"
	"testing"
)

// optimalAligned is the aligned-FASTA output of the exact aligner for a
// small triple (verified by TestVerifyOptimal itself — the checker
// recomputes the optimum).
const optimalAligned = ">s1\nACGTACGT\n>s2\nACG-ACGT\n>s3\nACGTACG-\n"

// worseAligned aligns the same sequences with gratuitous extra gaps.
const worseAligned = ">s1\nACGTACGT--\n>s2\nACG-ACG--T\n>s3\nACGTAC--G-\n"

func TestVerifyOptimal(t *testing.T) {
	var out strings.Builder
	code, err := run(nil, strings.NewReader(optimalAligned), &out)
	if err != nil {
		t.Fatalf("err: %v\n%s", err, out.String())
	}
	if code != 0 {
		t.Fatalf("exit code %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "OPTIMAL") {
		t.Fatalf("missing verdict:\n%s", out.String())
	}
}

func TestVerifySubOptimal(t *testing.T) {
	var out strings.Builder
	code, err := run(nil, strings.NewReader(worseAligned), &out)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code %d, want 1:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "SUB-OPTIMAL") {
		t.Fatalf("missing verdict:\n%s", out.String())
	}
}

func TestVerifyNoOpt(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-no-opt"}, strings.NewReader(worseAligned), &out)
	if err != nil || code != 0 {
		t.Fatalf("no-opt check failed: code=%d err=%v", code, err)
	}
	if strings.Contains(out.String(), "verdict") {
		t.Fatalf("no-opt printed a verdict:\n%s", out.String())
	}
}

func TestVerifyErrors(t *testing.T) {
	cases := []struct {
		args  []string
		stdin string
	}{
		{nil, ">a\nAC\n>b\nAC\n"},              // two records
		{[]string{"-alphabet", "klingon"}, ""}, // bad alphabet
		{[]string{"-scheme", "bogus"}, ""},     // bad scheme
		{[]string{"-in", "/nonexistent"}, ""},  // missing file
		{nil, ">a\nA-\n>b\nA-\n>c\nA-\n"},      // all-gap column
	}
	for i, c := range cases {
		var out strings.Builder
		code, err := run(c.args, strings.NewReader(c.stdin), &out)
		if err == nil || code == 0 {
			t.Errorf("case %d: expected failure, got code=%d err=%v", i, code, err)
		}
	}
}

// Command align3 computes an optimal (or heuristic) alignment of the three
// sequences in a FASTA file and prints it in one of several formats.
//
// Usage:
//
//	align3 -in triple.fasta -alphabet dna -algorithm parallel -workers 8
//	seqgen -n 100 | align3 -format clustal
//	align3 -in triple.fasta.gz -both-strands -format json
//	align3 -in triple.fasta -timeout 30s -fallback
//	align3 -in triple.fasta -explain
//	align3 -in triple.fasta -max-mem 64000000
//	align3 -msa -in family.fasta
//	align3 -msa -in family.fasta -explain
//
// Exact algorithms: full, parallel, linear, parallel-linear, diagonal,
// pruned, pruned-parallel, affine, affine-linear, affine-parallel.
// Heuristics: center-star, center-star-refined, progressive.
// Formats: pretty (default), clustal, fasta, stats, json, quiet.
// Gzip-compressed input is detected automatically; -both-strands also
// tries the third sequence's reverse complement.
//
// -msa switches align3 from exactly three records to 2–64: a guide tree
// groups the family into triples, each triple is merged by the exact
// 3-way engine on profile consensus rows, and the result reports the
// Carrillo–Lipman optimality gap. With -explain the guide tree and each
// merge's execution plan are printed instead of aligning. -format
// supports pretty, fasta, json, and quiet in this mode; three-sequence
// MSA input produces exactly the alignment the default mode computes.
//
// Interrupting align3 (Ctrl-C / SIGTERM) cancels the alignment
// cooperatively: the worker pool drains, a "cancelled" error is printed,
// and the process exits non-zero — no partial output is emitted.
// -timeout bounds the exact computation the same way. With -fallback the
// deadline (or an over-cap lattice) degrades to the center-star-refined
// heuristic instead of failing: the process exits zero, the pretty and
// stats formats print a "degraded:" line with the cause, and the json
// format carries "degraded": true — screening pipelines should check that
// flag before treating the score as optimal.
//
// -explain prints the execution plan — the kernel the planner would
// dispatch, its tile shape and worker count, and the estimated cells,
// bytes, and duration — without aligning anything. -max-mem sets a soft
// memory budget (Options.MaxMemoryBytes): the planner downgrades to a
// smaller-memory kernel (full lattice → linear space → heuristic last
// resort) instead of rejecting, and each step shows up in the plan's
// downgrades (and in the json format's "plan" object).
//
// Exit codes distinguish the failure classes a screening pipeline wants
// to branch on:
//
//	0  success (including -fallback degraded results — check the
//	   "degraded" flag before treating the score as optimal)
//	1  generic failure: bad input, unknown flags, cancelled, or any
//	   other alignment error
//	3  the scheduler's watchdog stalled the run (repro.ErrStalled):
//	   a wedged worker, not a slow input — retrying may succeed,
//	   unlike exit 4
//	4  the alignment exceeds the memory budget (repro.ErrTooLarge)
//	   and no fallback was allowed: retrying the same input cannot
//	   succeed without raising -max-mem or adding -fallback
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	repro "repro"
	"repro/internal/prof"
	"repro/internal/seq"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout); err != nil {
		if errors.Is(err, context.Canceled) {
			err = fmt.Errorf("align3: cancelled (interrupt received)")
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps a run error to the documented exit code: stalls and
// memory exhaustion are distinguishable so pipelines can retry the former
// and re-budget the latter; everything else is the generic 1.
func exitCode(err error) int {
	switch {
	case errors.Is(err, repro.ErrStalled):
		return 3
	case errors.Is(err, repro.ErrTooLarge):
		return 4
	}
	return 1
}

func run(ctx context.Context, args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("align3", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var (
		in        = fs.String("in", "-", "input FASTA with exactly 3 records ('-' = stdin)")
		alphabet  = fs.String("alphabet", "dna", "residue alphabet: dna, rna, protein")
		scheme    = fs.String("scheme", "", "scoring scheme: dna, blosum62, blosum80, pam250 (default per alphabet)")
		algorithm = fs.String("algorithm", "", "algorithm (default auto); see package doc for the list")
		workers   = fs.Int("workers", 0, "goroutine pool size (0 = GOMAXPROCS)")
		block     = fs.Int("block", 0, "wavefront tile edge (0 = default)")
		gapOpen   = fs.Int("gap-open", 1, "gap-open penalty override (≤ 0 to set; 1 = keep scheme default)")
		gapExtend = fs.Int("gap-extend", 1, "gap-extend penalty override (≤ 0 to set; 1 = keep scheme default)")
		width     = fs.Int("width", 60, "output block width")
		format    = fs.String("format", "pretty", "output format: pretty, clustal, fasta, stats, json, quiet")
		bothStr   = fs.Bool("both-strands", false, "also try the third sequence's reverse complement (DNA/RNA) and keep the better alignment")
		timeout   = fs.Duration("timeout", 0, "wall-clock budget per alignment (0 = none); exceeded deadlines fail unless -fallback is set")
		fallback  = fs.Bool("fallback", false, "degrade to center-star-refined when the exact algorithm exceeds -timeout or the memory cap")
		maxMem    = fs.Int64("max-mem", 0, "soft memory budget in bytes: plan a smaller-memory kernel instead of rejecting (0 = none)")
		explain   = fs.Bool("explain", false, "print the execution plan and exit without aligning")
		msaMode   = fs.Bool("msa", false, "progressive MSA mode: accept 2-64 FASTA records instead of exactly 3")
		guideK    = fs.Int("guide-k", 0, "MSA guide-tree k-mer size (0 = default)")
		refineN   = fs.Int("refine-rounds", 0, "MSA refinement rounds (0 = default, negative disables)")
		serialMrg = fs.Bool("serial-merges", false, "run MSA merges serially instead of fanning through the batch scheduler")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("align3: %w", err)
	}
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return fmt.Errorf("align3: %w", err)
	}
	defer stopProf()

	alpha, err := alphabetByName(*alphabet)
	if err != nil {
		return err
	}
	r := stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	r, err = seq.MaybeDecompress(r)
	if err != nil {
		return err
	}
	opt := repro.Options{
		Algorithm:      repro.Algorithm(*algorithm),
		Workers:        *workers,
		BlockSize:      *block,
		MaxMemoryBytes: *maxMem,
		Deadline:       *timeout,
		Fallback:       *fallback,
	}
	if *scheme != "" {
		s, ok := repro.SchemeByName(*scheme)
		if !ok {
			return fmt.Errorf("align3: unknown scheme %q", *scheme)
		}
		opt.Scheme = s
	}
	if *gapOpen <= 0 || *gapExtend <= 0 {
		base := opt.Scheme
		if base == nil {
			base, err = repro.DefaultScheme(alpha)
			if err != nil {
				return err
			}
		}
		open, extend := int(base.GapOpen()), int(base.GapExtend())
		if *gapOpen <= 0 {
			open = *gapOpen
		}
		if *gapExtend <= 0 {
			extend = *gapExtend
		}
		opt.Scheme, err = base.WithGaps(open, extend)
		if err != nil {
			return err
		}
	}

	if *msaMode {
		mo := repro.MSAOptions{
			Options:      opt,
			GuideK:       *guideK,
			RefineRounds: *refineN,
			SerialMerges: *serialMrg,
		}
		return runMsaMode(ctx, stdout, r, alpha, mo, *format, *width, *explain)
	}

	tr, err := repro.ReadTripleFASTA(r, alpha)
	if err != nil {
		return err
	}

	if *explain {
		pl, err := repro.PlanAlign(tr, opt)
		if err != nil {
			return err
		}
		printPlan(stdout, pl)
		return nil
	}

	res, err := repro.AlignContext(ctx, tr, opt)
	if err != nil {
		return err
	}
	if *bothStr {
		rc, err := tr.C.ReverseComplement()
		if err != nil {
			return fmt.Errorf("align3: -both-strands: %w", err)
		}
		resRC, err := repro.AlignContext(ctx, repro.Triple{A: tr.A, B: tr.B, C: rc}, opt)
		if err != nil {
			return err
		}
		if resRC.Score > res.Score {
			res = resRC
		}
	}
	switch *format {
	case "quiet":
		fmt.Fprintln(stdout, res.Score)
	case "json":
		return writeJSON(stdout, res)
	case "clustal":
		return repro.WriteClustal(stdout, res.Alignment)
	case "fasta":
		return repro.WriteAlignedFASTA(stdout, res.Alignment, *width)
	case "stats":
		printStats(stdout, res)
	case "pretty":
		fmt.Fprintf(stdout, "algorithm: %s   elapsed: %s   score: %d\n\n",
			res.Algorithm, res.Elapsed.Round(res.Elapsed/100+1), res.Score)
		if err := res.Format(stdout, *width); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		printStats(stdout, res)
	default:
		return fmt.Errorf("align3: unknown format %q", *format)
	}
	return nil
}

// jsonReport is the machine-readable output of -format json.
type jsonReport struct {
	Algorithm     string               `json:"algorithm"`
	Score         int32                `json:"score"`
	ElapsedMS     float64              `json:"elapsed_ms"`
	Columns       int                  `json:"columns"`
	Rows          [3]string            `json:"rows"`
	Names         [3]string            `json:"names"`
	Consensus     string               `json:"consensus"`
	Conservation  string               `json:"conservation"`
	Stats         repro.AlignmentStats `json:"stats"`
	Prune         *repro.PruneStats    `json:"prune,omitempty"`
	Plan          *repro.Plan          `json:"plan,omitempty"`
	Degraded      bool                 `json:"degraded,omitempty"`
	DegradedCause string               `json:"degraded_cause,omitempty"`
}

func writeJSON(w io.Writer, res *repro.Result) error {
	ra, rb, rc := res.Rows()
	rep := jsonReport{
		Algorithm:    string(res.Algorithm),
		Score:        res.Score,
		ElapsedMS:    float64(res.Elapsed.Microseconds()) / 1000,
		Columns:      res.Columns(),
		Rows:         [3]string{ra, rb, rc},
		Names:        [3]string{res.Triple.A.Name(), res.Triple.B.Name(), res.Triple.C.Name()},
		Consensus:    res.Consensus(),
		Conservation: res.Conservation(),
		Stats:        res.ComputeStats(),
		Prune:        res.Prune,
		Plan:         res.Plan,
	}
	if res.Degraded {
		rep.Degraded = true
		if res.DegradedCause != nil {
			rep.DegradedCause = res.DegradedCause.Error()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func printStats(w io.Writer, res *repro.Result) {
	st := res.ComputeStats()
	fmt.Fprintf(w, "score: %d   columns: %d   full columns: %d   3-way identity: %.1f%%   pair identity: %.1f%%   gap fraction: %.1f%%\n",
		res.Score, st.Columns, st.FullColumns, 100*st.Identity3, 100*st.PairIdentity, 100*st.GapFraction)
	if res.Prune != nil {
		fmt.Fprintf(w, "carrillo-lipman: evaluated %d of %d cells (%.1f%%), lower bound %d\n",
			res.Prune.EvaluatedCells, res.Prune.TotalCells, 100*res.Prune.Fraction(), res.Prune.LowerBound)
	}
	if res.Degraded {
		fmt.Fprintf(w, "degraded: exact alignment unavailable (%v); score is heuristic, not optimal\n",
			res.DegradedCause)
	}
}

// printPlan renders one execution plan for -explain.
func printPlan(w io.Writer, pl *repro.Plan) {
	fmt.Fprintf(w, "algorithm: %s   workers: %d", pl.Algorithm, pl.Workers)
	if pl.CellWidthBits > 0 {
		fmt.Fprintf(w, "   cells: int%d", pl.CellWidthBits)
	}
	if pl.TileDims != [3]int{} {
		fmt.Fprintf(w, "   tile: %dx%dx%d", pl.TileDims[0], pl.TileDims[1], pl.TileDims[2])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "estimate: %d cells   %d bytes   %.1f Mcells/s   ~%s\n",
		pl.EstCells, pl.EstBytes, pl.EstMcellsPerSec, pl.EstDuration.Round(pl.EstDuration/100+1))
	if pl.EstEvaluatedCells > 0 {
		fmt.Fprintf(w, "est_evaluated_cells: %d (Carrillo–Lipman bounded search; work and memory scale with these, not the lattice)\n",
			pl.EstEvaluatedCells)
	}
	for _, d := range pl.Downgrades {
		fmt.Fprintf(w, "downgrade: %s\n", d)
	}
	if pl.Degraded {
		fmt.Fprintln(w, "degraded: no exact kernel fits the budget; the planned score is a heuristic lower bound")
	}
}

// runMsaMode reads 2-64 FASTA records and runs the guide-tree progressive
// MSA. With explain it prints the guide tree and each merge's execution
// plan instead of aligning.
func runMsaMode(ctx context.Context, stdout io.Writer, r io.Reader, alpha *seq.Alphabet, opt repro.MSAOptions, format string, width int, explain bool) error {
	seqs, err := repro.ReadFASTA(r, alpha)
	if err != nil {
		return err
	}
	if explain {
		mp, err := repro.PlanMSA(seqs, opt)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, mp.Tree.String())
		for _, m := range mp.Merges {
			fmt.Fprintf(stdout, "merge level=%d members=%v out=%d n_way=%d est_bytes=%d\n",
				m.Level, m.Members, m.Out, m.NWay, m.EstBytes)
			if m.Plan != nil {
				printPlan(stdout, m.Plan)
			}
		}
		fmt.Fprintf(stdout, "peak_level_bytes=%d total_est_cells=%d\n", mp.PeakLevelBytes, mp.TotalEstCells)
		return nil
	}
	res, err := repro.AlignMSA(ctx, seqs, opt)
	if err != nil {
		return err
	}
	switch format {
	case "quiet":
		fmt.Fprintln(stdout, res.Score)
	case "json":
		return writeMsaJSON(stdout, res)
	case "fasta":
		return repro.WriteAlignedFASTAMulti(stdout, res.Profile, width)
	case "pretty":
		fmt.Fprintf(stdout, "sequences: %d   elapsed: %s   score: %d   upper bound: %d   gap: %d\n\n",
			res.Profile.NumRows(), res.Elapsed.Round(res.Elapsed/100+1), res.Score, res.UpperBound, res.OptimalityGap)
		if err := res.Profile.Format(stdout, width); err != nil {
			return err
		}
		fmt.Fprintln(stdout)
		fmt.Fprintf(stdout, "merges: %d (%d batched)   columns: %d\n",
			len(res.Merges), res.BatchedMerges, res.Profile.Columns())
		if res.Degraded {
			fmt.Fprintln(stdout, "degraded: one or more merges fell back to a heuristic; the score is not certified")
		}
	default:
		return fmt.Errorf("align3: format %q not supported in -msa mode (want pretty, fasta, json, or quiet)", format)
	}
	return nil
}

// msaJSONReport is the machine-readable output of -msa -format json.
type msaJSONReport struct {
	NumSequences  int      `json:"num_sequences"`
	Score         int32    `json:"score"`
	UpperBound    int32    `json:"upper_bound"`
	OptimalityGap int32    `json:"optimality_gap"`
	ElapsedMS     float64  `json:"elapsed_ms"`
	Columns       int      `json:"columns"`
	Names         []string `json:"names"`
	Rows          []string `json:"rows"`
	BatchedMerges int      `json:"batched_merges"`
	Degraded      bool     `json:"degraded,omitempty"`
}

func writeMsaJSON(w io.Writer, res *repro.MSAResult) error {
	rep := msaJSONReport{
		NumSequences:  res.Profile.NumRows(),
		Score:         res.Score,
		UpperBound:    res.UpperBound,
		OptimalityGap: res.OptimalityGap,
		ElapsedMS:     float64(res.Elapsed.Microseconds()) / 1000,
		Columns:       res.Profile.Columns(),
		Names:         res.Profile.Names(),
		Rows:          res.Profile.RowStrings(),
		BatchedMerges: res.BatchedMerges,
		Degraded:      res.Degraded,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func alphabetByName(name string) (*seq.Alphabet, error) {
	if alpha, ok := repro.AlphabetByName(name); ok {
		return alpha, nil
	}
	return nil, fmt.Errorf("align3: unknown alphabet %q (want dna, rna, or protein)", name)
}

package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	repro "repro"
	"strconv"
	"strings"
	"testing"
)

const testFASTA = ">s1\nACGTACGT\n>s2\nACGACGT\n>s3\nACGTACG\n"

func runCLI(t *testing.T, args []string, stdin string) string {
	t.Helper()
	var out strings.Builder
	if err := run(context.Background(), args, strings.NewReader(stdin), &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestRunDefault(t *testing.T) {
	out := runCLI(t, nil, testFASTA)
	for _, want := range []string{"algorithm: parallel", "score:", "s1", "s2", "s3", "identity"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunQuiet(t *testing.T) {
	out := runCLI(t, []string{"-format", "quiet"}, testFASTA)
	if strings.TrimSpace(out) == "" || strings.Contains(out, "algorithm") {
		t.Fatalf("quiet output wrong: %q", out)
	}
}

func TestRunFormats(t *testing.T) {
	clustal := runCLI(t, []string{"-format", "clustal"}, testFASTA)
	if !strings.Contains(clustal, "CLUSTAL") {
		t.Errorf("clustal output missing header:\n%s", clustal)
	}
	fasta := runCLI(t, []string{"-format", "fasta"}, testFASTA)
	if strings.Count(fasta, ">") != 3 {
		t.Errorf("fasta output should have 3 records:\n%s", fasta)
	}
	stats := runCLI(t, []string{"-format", "stats"}, testFASTA)
	if !strings.Contains(stats, "columns:") {
		t.Errorf("stats output:\n%s", stats)
	}
}

func TestRunAlgorithmsAgree(t *testing.T) {
	var scores []string
	for _, algo := range []string{"full", "parallel", "linear", "parallel-linear", "diagonal", "pruned", "pruned-parallel"} {
		out := runCLI(t, []string{"-format", "quiet", "-algorithm", algo}, testFASTA)
		scores = append(scores, strings.TrimSpace(out))
	}
	for i := 1; i < len(scores); i++ {
		if scores[i] != scores[0] {
			t.Fatalf("algorithm %d score %s != %s", i, scores[i], scores[0])
		}
	}
}

func TestRunPrunedPrintsStats(t *testing.T) {
	out := runCLI(t, []string{"-algorithm", "pruned"}, testFASTA)
	if !strings.Contains(out, "carrillo-lipman") {
		t.Errorf("pruned run missing pruning stats:\n%s", out)
	}
}

func TestRunInputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.fasta")
	if err := os.WriteFile(path, []byte(testFASTA), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, []string{"-in", path, "-format", "quiet"}, "")
	if strings.TrimSpace(out) == "" {
		t.Fatal("no output from file input")
	}
}

func TestRunGapOverride(t *testing.T) {
	// Harsher gaps must not raise the score on inputs needing gaps.
	base := runCLI(t, []string{"-format", "quiet"}, testFASTA)
	harsh := runCLI(t, []string{"-format", "quiet", "-gap-extend", "-10"}, testFASTA)
	b, err := strconv.Atoi(strings.TrimSpace(base))
	if err != nil {
		t.Fatal(err)
	}
	h, err := strconv.Atoi(strings.TrimSpace(harsh))
	if err != nil {
		t.Fatal(err)
	}
	if h > b {
		t.Fatalf("harsher gaps raised score: %d > %d", h, b)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-alphabet", "klingon"},
		{"-scheme", "bogus"},
		{"-algorithm", "bogus"},
		{"-format", "bogus"},
		{"-in", "/nonexistent/file.fasta"},
		{"-notaflag"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(context.Background(), args, strings.NewReader(testFASTA), &out); err == nil {
			t.Errorf("run(%v): error expected", args)
		}
	}
}

func TestRunRejectsBadFASTA(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), nil, strings.NewReader(">a\nAC\n"), &out); err == nil {
		t.Fatal("single-record FASTA accepted")
	}
}

func TestRunJSONFormat(t *testing.T) {
	out := runCLI(t, []string{"-format", "json", "-algorithm", "pruned"}, testFASTA)
	var rep struct {
		Algorithm    string    `json:"algorithm"`
		Score        int32     `json:"score"`
		Columns      int       `json:"columns"`
		Rows         [3]string `json:"rows"`
		Consensus    string    `json:"consensus"`
		Conservation string    `json:"conservation"`
		Prune        *struct {
			EvaluatedCells int64 `json:"EvaluatedCells"`
		} `json:"prune"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.Algorithm != "pruned" || rep.Columns == 0 {
		t.Fatalf("report content wrong: %+v", rep)
	}
	if len(rep.Rows[0]) != rep.Columns || len(rep.Conservation) != rep.Columns {
		t.Fatalf("row/conservation lengths inconsistent: %+v", rep)
	}
	if rep.Prune == nil || rep.Prune.EvaluatedCells <= 0 {
		t.Fatalf("prune stats missing from JSON: %s", out)
	}
}

func TestRunGzipInput(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(testFASTA)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.fasta.gz")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	gz := runCLI(t, []string{"-in", path, "-format", "quiet"}, "")
	plain := runCLI(t, []string{"-format", "quiet"}, testFASTA)
	if gz != plain {
		t.Fatalf("gzip input score %q != plain %q", gz, plain)
	}
}

func TestRunBothStrands(t *testing.T) {
	// s3 is the reverse complement of a sequence similar to s1/s2: on the
	// given strand it aligns poorly, on the flipped strand well.
	in := ">s1\nACGTACGTACGTACGT\n>s2\nACGTACGTACGTACGT\n>s3\nACGTACGTACGTACGT\n"
	// reverse complement of s1 == ACGTACGTACGTACGT reversed-complemented:
	// complement(TGCATGCA...)... compute via library in the assertion below.
	fwd := runCLI(t, []string{"-format", "quiet"}, in)
	both := runCLI(t, []string{"-format", "quiet", "-both-strands"}, in)
	f, err := strconv.Atoi(strings.TrimSpace(fwd))
	if err != nil {
		t.Fatal(err)
	}
	b, err := strconv.Atoi(strings.TrimSpace(both))
	if err != nil {
		t.Fatal(err)
	}
	if b < f {
		t.Fatalf("both-strands score %d below single-strand %d", b, f)
	}

	// Now flip s3 so that only the reverse complement matches.
	flipped := ">s1\nAAAATTTTAAAACCCC\n>s2\nAAAATTTTAAAACCCC\n>s3\nAAAATTTTAAAACCCC\n"
	tr, err := seqReadTriple(flipped)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := tr.C.ReverseComplement()
	if err != nil {
		t.Fatal(err)
	}
	mixed := ">s1\nAAAATTTTAAAACCCC\n>s2\nAAAATTTTAAAACCCC\n>s3\n" + rc.String() + "\n"
	single := runCLI(t, []string{"-format", "quiet"}, mixed)
	dual := runCLI(t, []string{"-format", "quiet", "-both-strands"}, mixed)
	s, _ := strconv.Atoi(strings.TrimSpace(single))
	d, _ := strconv.Atoi(strings.TrimSpace(dual))
	if d <= s {
		t.Fatalf("flipped strand: both-strands %d should beat single %d", d, s)
	}
}

func seqReadTriple(in string) (repro.Triple, error) {
	return repro.ReadTripleFASTA(strings.NewReader(in), repro.DNA)
}

func TestRunBothStrandsProteinErrors(t *testing.T) {
	in := ">a\nMKT\n>b\nMKT\n>c\nMKT\n"
	var out strings.Builder
	if err := run(context.Background(), []string{"-alphabet", "protein", "-both-strands"}, strings.NewReader(in), &out); err == nil {
		t.Fatal("protein both-strands accepted")
	}
}

func TestRunPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	err := run(ctx, []string{"-format", "quiet"}, strings.NewReader(testFASTA), &out)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v, want context.Canceled", err)
	}
	if out.Len() != 0 {
		t.Fatalf("cancelled run wrote partial output: %q", out.String())
	}
}

func TestRunTimeoutWithoutFallbackFails(t *testing.T) {
	big := hugeFASTA(220)
	var out strings.Builder
	err := run(context.Background(), []string{"-format", "quiet", "-timeout", "1ns"},
		strings.NewReader(big), &out)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout run: err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunTimeoutWithFallbackDegrades(t *testing.T) {
	big := hugeFASTA(220)
	out := runCLI(t, []string{"-format", "stats", "-timeout", "1ns", "-fallback"}, big)
	if !strings.Contains(out, "degraded:") {
		t.Fatalf("degraded run missing degraded line:\n%s", out)
	}

	jout := runCLI(t, []string{"-format", "json", "-timeout", "1ns", "-fallback"}, big)
	var rep jsonReport
	if err := json.Unmarshal([]byte(jout), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || rep.DegradedCause == "" {
		t.Fatalf("json report not marked degraded: %+v", rep)
	}
	if rep.Algorithm != string(repro.AlgorithmCenterStarRefined) {
		t.Fatalf("degraded algorithm = %q, want center-star-refined", rep.Algorithm)
	}
}

// hugeFASTA builds a triple large enough that exact alignment cannot finish
// within a nanosecond deadline.
func hugeFASTA(n int) string {
	row := strings.Repeat("ACGT", n/4+1)[:n]
	return ">s1\n" + row + "\n>s2\n" + row + "\n>s3\n" + row + "\n"
}

func TestExitCodes(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{errors.New("generic failure"), 1},
		{repro.ErrStalled, 3},
		{&repro.StallError{Budget: 1, Completed: 1, Total: 2}, 3},
		{repro.ErrTooLarge, 4},
		{fmt.Errorf("align: %w", repro.ErrTooLarge), 4},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("exitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

const testFamily6 = ">f1\nACGTACGTAC\n>f2\nACGTACGAAC\n>f3\nACGGACGTAC\n>f4\nACGTACCTAC\n>f5\nAGGTACGTAC\n>f6\nACGTACGTCC\n"

func TestRunMsaPretty(t *testing.T) {
	out := runCLI(t, []string{"-msa"}, testFamily6)
	for _, want := range []string{"sequences: 6", "score:", "upper bound:", "merges:", "f1", "f6"} {
		if !strings.Contains(out, want) {
			t.Errorf("msa output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMsaTripleMatchesDefault(t *testing.T) {
	// Three records through -msa produce exactly the default mode's score.
	direct := strings.TrimSpace(runCLI(t, []string{"-format", "quiet"}, testFASTA))
	viaMsa := strings.TrimSpace(runCLI(t, []string{"-msa", "-format", "quiet"}, testFASTA))
	if direct != viaMsa {
		t.Fatalf("-msa score %s != default score %s", viaMsa, direct)
	}
}

func TestRunMsaFormats(t *testing.T) {
	fasta := runCLI(t, []string{"-msa", "-format", "fasta"}, testFamily6)
	if strings.Count(fasta, ">") != 6 {
		t.Errorf("msa fasta output should have 6 records:\n%s", fasta)
	}
	var rep struct {
		NumSequences int      `json:"num_sequences"`
		Rows         []string `json:"rows"`
		UpperBound   int32    `json:"upper_bound"`
		Score        int32    `json:"score"`
	}
	jsonOut := runCLI(t, []string{"-msa", "-format", "json"}, testFamily6)
	if err := json.Unmarshal([]byte(jsonOut), &rep); err != nil {
		t.Fatalf("msa json: %v\n%s", err, jsonOut)
	}
	if rep.NumSequences != 6 || len(rep.Rows) != 6 || rep.Score > rep.UpperBound {
		t.Fatalf("msa json report wrong: %+v", rep)
	}
}

func TestRunMsaExplain(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-msa", "-explain"}, strings.NewReader(testFamily6), &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"guide tree over 6 leaves", "merge level=", "peak_level_bytes="} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("msa explain missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunMsaSerialMerges(t *testing.T) {
	fanned := strings.TrimSpace(runCLI(t, []string{"-msa", "-format", "quiet"}, testFamily6))
	serial := strings.TrimSpace(runCLI(t, []string{"-msa", "-format", "quiet", "-serial-merges"}, testFamily6))
	if fanned != serial {
		t.Fatalf("serial merges changed the score: %s vs %s", serial, fanned)
	}
}

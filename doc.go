// Package repro is an open-source reproduction of "Efficient Parallel
// Algorithm for Optimal Three-Sequences Alignment" (Lin, Huang, Chung,
// Tang; ICPP 2007): exact, optimal alignment of three biological sequences
// under the sum-of-pairs objective, parallelized with a blocked-wavefront
// schedule over goroutines, with a linear-space divide-and-conquer variant
// for long sequences and Carrillo–Lipman pruning.
//
// This package is the public facade. The one-call entry point:
//
//	tr, _ := repro.ReadTripleFASTA(f, repro.DNA)
//	res, err := repro.Align(tr, repro.Options{})
//	fmt.Println(res.Alignment)
//
// Pick an algorithm and tune parallelism through Options:
//
//	res, err := repro.Align(tr, repro.Options{
//	    Algorithm: repro.AlgorithmParallel,
//	    Workers:   8,
//	    BlockSize: 16,
//	})
//
// The underlying algorithm implementations live in internal/core; sequence
// and scoring substrates in internal/seq and internal/scoring; heuristic
// baselines in internal/msa. DESIGN.md maps every subsystem, and
// bench_test.go regenerates every table and figure of the evaluation.
package repro

// Package repro is an open-source reproduction of "Efficient Parallel
// Algorithm for Optimal Three-Sequences Alignment" (Lin, Huang, Chung,
// Tang; ICPP 2007): exact, optimal alignment of three biological sequences
// under the sum-of-pairs objective, parallelized with a blocked-wavefront
// schedule over goroutines, with a linear-space divide-and-conquer variant
// for long sequences and Carrillo–Lipman pruning.
//
// This package is the public facade. The one-call entry point:
//
//	tr, _ := repro.ReadTripleFASTA(f, repro.DNA)
//	res, err := repro.Align(tr, repro.Options{})
//	fmt.Println(res.Alignment)
//
// Pick an algorithm and tune parallelism through Options:
//
//	res, err := repro.Align(tr, repro.Options{
//	    Algorithm: repro.AlgorithmParallel,
//	    Workers:   8,
//	    BlockSize: 16,
//	})
//
// # Cancellation and deadlines
//
// AlignContext and AlignBatchContext are the context-aware entry points;
// Align and AlignBatch are the same calls under context.Background().
// Cancelling the context stops every kernel cooperatively: sequential
// kernels poll at plane boundaries, parallel kernels per wavefront block,
// and the worker pool drains without leaking goroutines. The returned
// error wraps context.Canceled or context.DeadlineExceeded — test with
// errors.Is:
//
//	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
//	defer cancel()
//	res, err := repro.AlignContext(ctx, tr, repro.Options{})
//	if errors.Is(err, context.DeadlineExceeded) { ... }
//
// Options.Deadline bounds a single call without plumbing a context, and
// Options.Fallback turns budget exhaustion into graceful degradation: when
// an exact algorithm is stopped by the deadline or rejected by the
// MaxBytes admission check, the triple is re-aligned with the
// center-star-refined heuristic and the Result is marked Degraded, with
// DegradedCause holding the original error. Degraded scores are lower
// bounds on the optimum, not the optimum.
//
// For screening workloads the two budgets are complementary: MaxBytes
// rejects oversized inputs instantly (before any allocation), while
// Deadline catches inputs that fit in memory but compute too slowly. The
// typed sentinel ErrTooLarge identifies MaxBytes rejections.
//
// # Planning
//
// Algorithm selection is an explicit, inspectable step. Every kernel
// registers a self-describing spec in internal/plan, and the planner maps
// the triple's shape, the scoring scheme, and Options to an ExecutionPlan
// — kernel, workers, tile shape, estimated cells, bytes, and duration —
// before any lattice is allocated. Every successful Result carries the
// plan that drove it as Result.Plan, and PlanAlign returns the plan
// without aligning (the CLI's align3 -explain, the server's POST
// /v1/plan).
//
// Options.MaxMemoryBytes is a soft budget the planner satisfies by
// downgrading — full lattice to linear space to, as a last resort, the
// center-star-refined heuristic — recording each step in Plan.Downgrades.
// Linear-space downgrades keep the score optimal; only the heuristic last
// resort marks the Result Degraded (with an ErrTooLarge cause). MaxBytes
// stays the hard cap: an explicitly requested kernel over it fails with
// ErrTooLarge rather than being swapped.
//
// # Performance
//
// Every kernel precomputes the three pairwise substitution-score planes
// before filling the lattice, trading O(nm + np + mp) extra memory for an
// interior loop of plain array reads — negligible next to the O(nmp)
// lattice itself, and not counted against Options.MaxBytes. Scratch
// buffers (score rows, planes, tensors) are recycled through a size-classed
// arena in internal/mat; recycled buffers are returned dirty, so kernels
// seed every boundary cell explicitly rather than relying on zeroed
// memory. See the README's Performance section for measured numbers and
// the BENCH_<rev>.json regression harness.
//
// Lattice cell width is negotiated, never assumed. Scores and the public
// Alignment type are always int32, but the linear-gap kernels store the
// lattice itself in int16 cells when the planner proves every cell fits:
// total sequence length times the scheme's per-column score bound must
// stay within int16, checked with overflow-proof arithmetic. The chosen
// width is reported as Plan.CellWidthBits (16 or 32). The width is a
// hint with a one-sided failure mode: kernels re-verify the bound at
// dispatch and silently run 32-bit cells when it does not hold, so a
// stale plan can cost memory bandwidth but can never truncate a score.
// The -packed algorithm variants (AlgorithmFullPacked,
// AlgorithmParallelPacked — the Auto defaults for linear-gap schemes)
// additionally vectorize the interior loop along the unit-stride axis;
// they are exact and bit-identical to their scalar counterparts.
//
// The underlying algorithm implementations live in internal/core; sequence
// and scoring substrates in internal/seq and internal/scoring; heuristic
// baselines in internal/msa. DESIGN.md maps every subsystem, and
// bench_test.go regenerates every table and figure of the evaluation.
package repro

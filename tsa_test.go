package repro

import (
	"errors"
	"strings"
	"testing"
)

func mustTriple(t *testing.T, a, b, c string) Triple {
	t.Helper()
	tr, err := NewTriple(a, b, c, DNA)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAlignDefaultOptions(t *testing.T) {
	tr := mustTriple(t, "ACGTACGT", "ACGACGT", "ACGTACG")
	res, err := Align(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgorithmParallelPacked {
		t.Errorf("auto algorithm = %q, want parallel-packed", res.Algorithm)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
}

func TestAlignAllAlgorithmsAgree(t *testing.T) {
	g := NewGenerator(DNA, 101)
	tr := g.RelatedTriple(30, MutationModel{SubstitutionRate: 0.2, InsertionRate: 0.05, DeletionRate: 0.05})
	exact := []Algorithm{
		AlgorithmFull, AlgorithmParallel, AlgorithmLinear, AlgorithmParallelLinear,
		AlgorithmDiagonal, AlgorithmPruned, AlgorithmPrunedParallel,
	}
	var want int32
	for i, algo := range exact {
		res, err := Align(tr, Options{Algorithm: algo, Workers: 3, BlockSize: 8})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if i == 0 {
			want = res.Score
		} else if res.Score != want {
			t.Fatalf("%s score %d != full %d", algo, res.Score, want)
		}
		if algo == AlgorithmPruned || algo == AlgorithmPrunedParallel {
			if res.Prune == nil {
				t.Fatal("pruned run missing PruneStats")
			}
			if res.Prune.EvaluatedCells <= 0 || res.Prune.EvaluatedCells > res.Prune.TotalCells {
				t.Fatalf("bad prune stats: %+v", res.Prune)
			}
		} else if res.Prune != nil {
			t.Fatalf("%s unexpectedly carries PruneStats", algo)
		}
	}
	for _, algo := range []Algorithm{AlgorithmCenterStar, AlgorithmCenterStarRefined, AlgorithmProgressive} {
		res, err := Align(tr, Options{Algorithm: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if res.Score > want {
			t.Fatalf("%s heuristic score %d beats optimum %d", algo, res.Score, want)
		}
	}
}

func TestAlignUnknownAlgorithm(t *testing.T) {
	tr := mustTriple(t, "AC", "AC", "AC")
	if _, err := Align(tr, Options{Algorithm: "nonsense"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestAlignAutoFallsBackToLinear(t *testing.T) {
	g := NewGenerator(DNA, 5)
	tr := g.RelatedTriple(64, MutationModel{SubstitutionRate: 0.1})
	// At 1 MiB the 32-bit lattice (~1.1 MB) no longer fits, but the
	// negotiated 16-bit lattice (~0.55 MB) does: the planner keeps the
	// packed lattice kernel at half width instead of downgrading.
	narrow, err := Align(tr, Options{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Algorithm != AlgorithmParallelPacked {
		t.Fatalf("auto with an int16-fitting cap chose %q", narrow.Algorithm)
	}
	if narrow.Plan == nil || narrow.Plan.CellWidthBits != 16 {
		t.Fatalf("auto with an int16-fitting cap planned width %+v, want 16", narrow.Plan)
	}
	// Cap memory below even the 16-bit lattice but above the linear planes.
	res, err := Align(tr, Options{MaxBytes: 1 << 19})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgorithmParallelLinear {
		t.Fatalf("auto under memory pressure chose %q", res.Algorithm)
	}
	ref, err := Align(tr, Options{Algorithm: AlgorithmFull})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != ref.Score {
		t.Fatalf("fallback score %d != %d", res.Score, ref.Score)
	}
}

func TestAlignMemoryCapError(t *testing.T) {
	tr := mustTriple(t, "ACGTACGTAC", "ACGTACGTAC", "ACGTACGTAC")
	_, err := Align(tr, Options{Algorithm: AlgorithmFull, MaxBytes: 64})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestAlignProteinDefaults(t *testing.T) {
	a, err := NewSequence("h1", "MKTAYIAKQR", Protein)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSequence("h2", "MKTAYIAKQR", Protein)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewSequence("h3", "MKTAYLAKQR", Protein)
	if err != nil {
		t.Fatal(err)
	}
	// Default protein scheme is affine BLOSUM62, exercised via the affine
	// algorithm.
	res, err := Align(Triple{A: a, B: b, C: c}, Options{Algorithm: AlgorithmAffine})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Columns() != 10 {
		t.Fatalf("columns = %d, want 10 (no gaps needed)", res.Columns())
	}
}

func TestReadTripleFASTARoundTrip(t *testing.T) {
	in := ">a\nACGT\n>b\nACG\n>c\nAGT\n"
	tr, err := ReadTripleFASTA(strings.NewReader(in), DNA)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := WriteFASTA(&out, []*Sequence{tr.A, tr.B, tr.C}, 60); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), ">b\nACG\n") {
		t.Fatalf("round trip lost record:\n%s", out.String())
	}
}

func TestDefaultScheme(t *testing.T) {
	for _, alpha := range []*Alphabet{DNA, RNA, Protein} {
		s, err := DefaultScheme(alpha)
		if err != nil || s == nil {
			t.Errorf("DefaultScheme(%s): %v", alpha.Name(), err)
		}
	}
}

func TestSchemeByName(t *testing.T) {
	if _, ok := SchemeByName("blosum62"); !ok {
		t.Error("blosum62 not found")
	}
	if _, ok := SchemeByName("bogus"); ok {
		t.Error("bogus scheme found")
	}
}

func TestAlgorithmsList(t *testing.T) {
	list := Algorithms()
	if len(list) != 17 {
		t.Fatalf("Algorithms() has %d entries, want 17", len(list))
	}
	tr := mustTriple(t, "ACGT", "ACG", "AGT")
	for _, algo := range list {
		if _, err := Align(tr, Options{Algorithm: algo}); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
}

func TestNewTripleValidation(t *testing.T) {
	if _, err := NewTriple("AC", "A!", "AC", DNA); err == nil {
		t.Fatal("invalid residue accepted")
	}
}

func TestAffineFamilyAgrees(t *testing.T) {
	g := NewGenerator(DNA, 202)
	tr := g.RelatedTriple(18, MutationModel{SubstitutionRate: 0.25, InsertionRate: 0.05, DeletionRate: 0.05})
	sch, ok := SchemeByName("dna")
	if !ok {
		t.Fatal("dna scheme missing")
	}
	aff, err := sch.WithGaps(-5, -1)
	if err != nil {
		t.Fatal(err)
	}
	var want int32
	for i, algo := range []Algorithm{AlgorithmAffine, AlgorithmAffineLinear, AlgorithmAffineParallel} {
		res, err := Align(tr, Options{Algorithm: algo, Scheme: aff, Workers: 3, BlockSize: 5})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if i == 0 {
			want = res.Score
		} else if res.Score != want {
			t.Fatalf("%s score %d != affine %d", algo, res.Score, want)
		}
	}
}

func TestAlignAutoHonorsAffineScheme(t *testing.T) {
	// Protein's default scheme (BLOSUM62) is affine, so Auto must run an
	// affine algorithm instead of silently dropping GapOpen.
	a, err := NewSequence("a", "MKTAYIAKQR", Protein)
	if err != nil {
		t.Fatal(err)
	}
	tr := Triple{A: a, B: a, C: a}
	res, err := Align(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != AlgorithmAffineParallel {
		t.Fatalf("auto for affine scheme chose %q, want affine-parallel", res.Algorithm)
	}
	ref, err := Align(tr, Options{Algorithm: AlgorithmAffine})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != ref.Score {
		t.Fatalf("auto affine %d != affine %d", res.Score, ref.Score)
	}
	// Under a tight memory cap Auto falls to the affine linear-space variant.
	g := NewGenerator(Protein, 3)
	big := g.RelatedTriple(48, MutationModel{SubstitutionRate: 0.1})
	capped, err := Align(big, Options{MaxBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Algorithm != AlgorithmAffineLinear {
		t.Fatalf("auto under cap chose %q, want affine-linear", capped.Algorithm)
	}
}

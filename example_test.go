package repro_test

import (
	"fmt"
	"log"
	"strings"

	repro "repro"
)

// ExampleAlign shows the one-call path from residue strings to an optimal
// alignment.
func ExampleAlign() {
	tr, err := repro.NewTriple("GATTACA", "GATACA", "GATTACA", repro.DNA)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.Align(tr, repro.Options{Algorithm: repro.AlgorithmFull})
	if err != nil {
		log.Fatal(err)
	}
	ra, rb, rc := res.Rows()
	fmt.Println("score:", res.Score)
	fmt.Println(ra)
	fmt.Println(rb)
	fmt.Println(rc)
	// Output:
	// score: 34
	// GATTACA
	// GA-TACA
	// GATTACA
}

// ExampleAlign_pruned demonstrates the Carrillo–Lipman variant and its
// statistics.
func ExampleAlign_pruned() {
	g := repro.NewGenerator(repro.DNA, 1)
	tr := g.RelatedTriple(60, repro.MutationModel{SubstitutionRate: 0.05})
	res, err := repro.Align(tr, repro.Options{Algorithm: repro.AlgorithmPruned})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimal:", res.Score == mustScore(tr))
	fmt.Println("pruned most of the lattice:", res.Prune.Fraction() < 0.10)
	// Output:
	// optimal: true
	// pruned most of the lattice: true
}

func mustScore(tr repro.Triple) int32 {
	res, err := repro.Align(tr, repro.Options{Algorithm: repro.AlgorithmFull})
	if err != nil {
		log.Fatal(err)
	}
	return res.Score
}

// ExampleReadTripleFASTA parses three FASTA records and aligns them.
func ExampleReadTripleFASTA() {
	fasta := ">x\nACGT\n>y\nACG\n>z\nAGT\n"
	tr, err := repro.ReadTripleFASTA(strings.NewReader(fasta), repro.DNA)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.Align(tr, repro.Options{Algorithm: repro.AlgorithmFull})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tr.A.Name(), tr.B.Name(), tr.C.Name(), "score:", res.Score)
	// Output:
	// x y z score: 8
}

// ExampleAlignBatch ranks candidate third sequences against a fixed pair.
func ExampleAlignBatch() {
	g := repro.NewGenerator(repro.DNA, 7)
	anc := g.Random("anc", 40)
	a := g.Mutate("a", anc, repro.MutationModel{SubstitutionRate: 0.05})
	b := g.Mutate("b", anc, repro.MutationModel{SubstitutionRate: 0.05})
	relative := g.Mutate("rel", anc, repro.MutationModel{SubstitutionRate: 0.10})
	decoy := g.Random("decoy", 40)

	results := repro.AlignBatch([]repro.Triple{
		{A: a, B: b, C: relative},
		{A: a, B: b, C: decoy},
	}, repro.Options{Algorithm: repro.AlgorithmFull})
	fmt.Println("relative beats decoy:", results[0].Result.Score > results[1].Result.Score)
	// Output:
	// relative beats decoy: true
}

// ExampleAlignment_Consensus derives a consensus sequence from an optimal
// alignment.
func ExampleAlignment_Consensus() {
	tr, _ := repro.NewTriple("ACGTT", "ACGT", "ACTTT", repro.DNA)
	res, err := repro.Align(tr, repro.Options{Algorithm: repro.AlgorithmFull})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Consensus())
	// Output:
	// ACGTT
}
